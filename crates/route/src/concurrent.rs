use crate::{Grid, RouteError};
use dmf_chip::Coord;
use dmf_pins::PinAssignment;
use std::collections::{BinaryHeap, HashMap};

/// One droplet transport request for [`route_concurrent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRequest {
    /// Starting electrode.
    pub from: Coord,
    /// Destination electrode.
    pub to: Coord,
}

/// A space-time path: `cells[t]` is the droplet's electrode at step `t`.
/// Droplets may wait (`cells[t] == cells[t + 1]`); after its last entry a
/// droplet is considered parked at its destination.
///
/// A `TimedPath` is never empty: a droplet always occupies at least its
/// source electrode at step 0. The invariant is enforced by
/// [`TimedPath::new`], which is the only way to construct one — so
/// [`TimedPath::at`] never has to invent a position. (An earlier version
/// defaulted an empty path to `(0, 0)`, which the conflict checker then
/// treated as a phantom droplet parked on that electrode.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedPath {
    /// Per-step positions, starting at the source. Invariant: non-empty.
    cells: Vec<Coord>,
}

impl TimedPath {
    /// Wraps per-step positions into a path.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::EmptyPath`] when `cells` is empty — a droplet
    /// with no position is unrepresentable.
    pub fn new(cells: Vec<Coord>) -> Result<Self, RouteError> {
        if cells.is_empty() {
            return Err(RouteError::EmptyPath);
        }
        Ok(TimedPath { cells })
    }

    /// Position at step `t`, clamping to the final cell after arrival.
    pub fn at(&self, t: usize) -> Coord {
        // In-bounds by the non-empty invariant: len >= 1.
        self.cells[t.min(self.cells.len() - 1)]
    }

    /// Per-step positions, starting at the source (never empty).
    pub fn cells(&self) -> &[Coord] {
        &self.cells
    }

    /// Electrode actuations (hops onto a new electrode).
    pub fn actuations(&self) -> u32 {
        crate::actuations(&self.cells)
    }

    /// Steps until arrival.
    pub fn duration(&self) -> usize {
        self.cells.len() - 1
    }
}

/// Routes several droplets simultaneously with prioritised space-time A*.
///
/// Requests are planned in order; each later droplet treats the earlier
/// ones' timed paths as moving obstacles under the static and dynamic
/// fluidic constraints (8-neighborhood separation against both the current
/// and the previous position of every other droplet).
///
/// # Errors
///
/// Returns [`RouteError::Unroutable`] when some droplet cannot reach its
/// destination within the search horizon, with the request index attached.
///
/// # Examples
///
/// ```
/// use dmf_chip::Coord;
/// use dmf_route::{route_concurrent, Grid, RouteRequest};
///
/// let grid = Grid::new(8, 8);
/// let paths = route_concurrent(
///     &grid,
///     &[
///         RouteRequest { from: Coord::new(0, 0), to: Coord::new(7, 0) },
///         RouteRequest { from: Coord::new(0, 4), to: Coord::new(7, 4) },
///     ],
/// )?;
/// assert_eq!(paths.len(), 2);
/// # Ok::<(), dmf_route::RouteError>(())
/// ```
pub fn route_concurrent(
    grid: &Grid,
    requests: &[RouteRequest],
) -> Result<Vec<TimedPath>, RouteError> {
    route_with(grid, requests, None)
}

/// [`route_concurrent`] under a pin-constrained backend: in addition to
/// the fluidic constraints, no step may require conflicting pin states —
/// actuating the electrode a droplet moves onto must not ghost-actuate
/// (via a shared control pin) any electrode inside another droplet's
/// exclusion zone at that step or the one before. Pin conflicts are route
/// constraints here, exactly like fluidic ones: the search detours or
/// waits around them, and an exhausted horizon surfaces as
/// [`RouteError::Unroutable`] rather than a silently hazardous path.
///
/// With a direct (one pin per electrode) assignment this is byte-identical
/// to [`route_concurrent`]: there are no ghosts to conflict.
///
/// # Errors
///
/// As [`route_concurrent`].
pub fn route_concurrent_pinned(
    grid: &Grid,
    requests: &[RouteRequest],
    pins: &PinAssignment,
) -> Result<Vec<TimedPath>, RouteError> {
    route_with(grid, requests, Some(pins).filter(|p| !p.is_direct()))
}

fn route_with(
    grid: &Grid,
    requests: &[RouteRequest],
    pins: Option<&PinAssignment>,
) -> Result<Vec<TimedPath>, RouteError> {
    let mut planned: Vec<TimedPath> = Vec::with_capacity(requests.len());
    let horizon = search_horizon(grid, requests.len());
    for (index, request) in requests.iter().enumerate() {
        let path = space_time_astar(grid, *request, &planned, horizon, pins)
            .ok_or(RouteError::Unroutable { index, from: request.from, to: request.to })?;
        planned.push(path);
    }
    Ok(planned)
}

/// The space-time search horizon for a batch of `request_count` droplets:
/// grid perimeter plus a congestion allowance of 8 steps per droplet.
///
/// Computed entirely in `usize` with saturating arithmetic. An earlier
/// version multiplied `8 * requests.len() as i32`, which wraps for large
/// batches and collapses the horizon to a tiny or negative window,
/// spuriously rejecting every route.
pub fn search_horizon(grid: &Grid, request_count: usize) -> usize {
    let perimeter = usize::try_from(grid.width().max(0))
        .unwrap_or(0)
        .saturating_add(usize::try_from(grid.height().max(0)).unwrap_or(0));
    perimeter.saturating_mul(4).saturating_add(request_count.saturating_mul(8))
}

fn conflicts(
    planned: &[TimedPath],
    pos: Coord,
    prev: Coord,
    t: usize,
    pins: Option<&PinAssignment>,
) -> bool {
    for other in planned {
        let other_now = other.at(t);
        let other_prev = other.at(t.saturating_sub(1));
        // Static constraint at step t.
        if pos.touches(other_now) {
            return true;
        }
        // Dynamic constraints: no move into another droplet's wake, and the
        // other droplet must not move into ours.
        if pos.touches(other_prev) || prev.touches(other_now) {
            return true;
        }
        // Pin co-activation constraints: a hop actuates the destination
        // electrode, which under a shared-pin backend also fires that
        // electrode's ghosts. Neither droplet's actuation may ghost into
        // the other's motion zone (see `PinAssignment::motion_conflict`).
        if let Some(p) = pins {
            if pos != prev && p.motion_conflict(pos, other_prev, other_now) {
                return true;
            }
            if other_now != other_prev && p.motion_conflict(other_now, prev, pos) {
                return true;
            }
        }
    }
    false
}

fn space_time_astar(
    grid: &Grid,
    request: RouteRequest,
    planned: &[TimedPath],
    horizon: usize,
    pins: Option<&PinAssignment>,
) -> Option<TimedPath> {
    if !grid.passable(request.from) || !grid.passable(request.to) {
        return None;
    }
    #[derive(PartialEq, Eq)]
    struct Item(std::cmp::Reverse<(u32, usize)>, Coord, usize); // (f, t) pos t
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.cmp(&other.0)
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut open: BinaryHeap<Item> = BinaryHeap::new();
    let mut best: HashMap<(Coord, usize), u32> = HashMap::new();
    let mut came: HashMap<(Coord, usize), (Coord, usize)> = HashMap::new();
    if conflicts(planned, request.from, request.from, 0, pins) {
        return None;
    }
    best.insert((request.from, 0), 0);
    open.push(Item(std::cmp::Reverse((request.from.manhattan(request.to), 0)), request.from, 0));
    while let Some(Item(_, pos, t)) = open.pop() {
        if pos == request.to {
            // The droplet parks here: verify no later conflicts while the
            // remaining planned droplets finish moving.
            let tail_clear =
                (t + 1..=max_duration(planned)).all(|tt| !conflicts(planned, pos, pos, tt, pins));
            if tail_clear {
                let mut cells = vec![pos];
                let mut key = (pos, t);
                while let Some(&prev) = came.get(&key) {
                    cells.push(prev.0);
                    key = prev;
                }
                cells.reverse();
                return Some(TimedPath { cells });
            }
        }
        if t >= horizon {
            continue;
        }
        let g = best[&(pos, t)];
        let mut candidates = vec![pos];
        candidates.extend(pos.orthogonal_neighbors());
        for next in candidates {
            if !grid.passable(next) {
                continue;
            }
            if conflicts(planned, next, pos, t + 1, pins) {
                continue;
            }
            let cost = g + u32::from(next != pos);
            let key = (next, t + 1);
            if cost < best.get(&key).copied().unwrap_or(u32::MAX) {
                best.insert(key, cost);
                came.insert(key, (pos, t));
                open.push(Item(
                    std::cmp::Reverse((cost + next.manhattan(request.to), t + 1)),
                    next,
                    t + 1,
                ));
            }
        }
    }
    None
}

fn max_duration(planned: &[TimedPath]) -> usize {
    planned.iter().map(TimedPath::duration).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_fluidic_constraints(paths: &[TimedPath]) {
        let steps = paths.iter().map(TimedPath::duration).max().unwrap_or(0);
        for t in 0..=steps {
            for i in 0..paths.len() {
                for j in 0..paths.len() {
                    if i == j {
                        continue;
                    }
                    let a = paths[i].at(t);
                    let b = paths[j].at(t);
                    assert!(!a.touches(b), "static violation at t={t}: {a} vs {b}");
                    if t > 0 {
                        let b_prev = paths[j].at(t - 1);
                        assert!(!a.touches(b_prev), "dynamic violation at t={t}: {a} vs {b_prev}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_lanes_do_not_interact() {
        let grid = Grid::new(10, 10);
        let paths = route_concurrent(
            &grid,
            &[
                RouteRequest { from: Coord::new(0, 0), to: Coord::new(9, 0) },
                RouteRequest { from: Coord::new(0, 5), to: Coord::new(9, 5) },
            ],
        )
        .unwrap();
        assert_eq!(paths[0].actuations(), 9);
        assert_eq!(paths[1].actuations(), 9);
        check_fluidic_constraints(&paths);
    }

    #[test]
    fn crossing_droplets_wait_or_detour() {
        let grid = Grid::new(9, 9);
        let paths = route_concurrent(
            &grid,
            &[
                RouteRequest { from: Coord::new(0, 4), to: Coord::new(8, 4) },
                RouteRequest { from: Coord::new(4, 0), to: Coord::new(4, 8) },
            ],
        )
        .unwrap();
        check_fluidic_constraints(&paths);
        // The second droplet pays something (wait or detour).
        assert!(paths[1].duration() >= 8);
    }

    #[test]
    fn head_on_corridor_requires_separate_timing() {
        // A 1-wide corridor cannot host two opposite droplets; the planner
        // must fail rather than violate constraints.
        let mut grid = Grid::new(9, 3);
        for x in 0..9 {
            grid.block(Coord::new(x, 0));
            grid.block(Coord::new(x, 2));
        }
        grid.unblock(Coord::new(0, 0)); // leave start/ends clear enough
        let result = route_concurrent(
            &grid,
            &[
                RouteRequest { from: Coord::new(1, 1), to: Coord::new(7, 1) },
                RouteRequest { from: Coord::new(7, 1), to: Coord::new(1, 1) },
            ],
        );
        assert!(matches!(result, Err(RouteError::Unroutable { index: 1, .. })));
    }

    #[test]
    fn many_droplets_on_open_grid() {
        let grid = Grid::new(16, 16);
        let requests: Vec<RouteRequest> = (0..5)
            .map(|i| RouteRequest { from: Coord::new(0, 3 * i), to: Coord::new(15, 3 * (4 - i)) })
            .collect();
        let paths = route_concurrent(&grid, &requests).unwrap();
        check_fluidic_constraints(&paths);
        assert_eq!(paths.len(), 5);
    }

    /// Independent re-derivation of the pin-safety property: at every
    /// step, the ghosts of each actuated electrode stay out of every
    /// other droplet's motion zone — strictly adjacent to neither its
    /// current nor its previous cell, and never on a cell it is leaving.
    fn check_pin_constraints(paths: &[TimedPath], pins: &PinAssignment) {
        let steps = paths.iter().map(TimedPath::duration).max().unwrap_or(0);
        for t in 1..=steps {
            for (i, path) in paths.iter().enumerate() {
                let (pos, prev) = (path.at(t), path.at(t - 1));
                if pos == prev {
                    continue; // waiting actuates nothing new
                }
                for (j, other) in paths.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let (o_now, o_prev) = (other.at(t), other.at(t - 1));
                    for g in pins.ghosts(pos) {
                        let harmful = g != o_now && (g.touches(o_now) || g.touches(o_prev));
                        assert!(!harmful, "ghost {g} of {pos} intrudes on droplet {j} at t={t}");
                    }
                }
            }
        }
    }

    #[test]
    fn pinned_routing_with_direct_backend_is_byte_identical() {
        use dmf_pins::BackendKind;
        let grid = Grid::new(16, 16);
        let requests: Vec<RouteRequest> = (0..5)
            .map(|i| RouteRequest { from: Coord::new(0, 3 * i), to: Coord::new(15, 3 * (4 - i)) })
            .collect();
        let direct = BackendKind::DirectAddress.backend().assign(16, 16).unwrap();
        let plain = route_concurrent(&grid, &requests).unwrap();
        let pinned = route_concurrent_pinned(&grid, &requests, &direct).unwrap();
        assert_eq!(plain, pinned);
    }

    #[test]
    fn row_column_ghosts_become_route_constraints() {
        use dmf_pins::{ChipBackend, RowColumn};
        let grid = Grid::new(16, 12);
        // A droplet parked at (2,5) turns every actuation of column 7
        // (whose pitch-5 ghosts land in column 2) near its row into a
        // route constraint: the second droplet's straight descent down
        // column 8 would ghost cells (3,4)..(3,6) into the parked
        // droplet's exclusion zone, so the pinned router must detour.
        let requests = [
            RouteRequest { from: Coord::new(2, 5), to: Coord::new(2, 5) },
            RouteRequest { from: Coord::new(8, 2), to: Coord::new(8, 10) },
        ];
        let pins = RowColumn::new(5).unwrap().assign(16, 12).unwrap();
        let paths = route_concurrent_pinned(&grid, &requests, &pins).unwrap();
        check_fluidic_constraints(&paths);
        check_pin_constraints(&paths, &pins);
        let plain = route_concurrent(&grid, &requests).unwrap();
        assert_ne!(plain, paths, "pin constraints had no effect on a hazardous scenario");
    }

    #[test]
    fn compatible_lanes_share_a_pin_without_penalty() {
        use dmf_pins::{ChipBackend, RowColumn};
        let grid = Grid::new(16, 8);
        // Exactly one pitch apart: the two droplets' hops are driven by
        // the same pins simultaneously — the compatible co-activation pin
        // sharing exists for. Both straight-line paths survive.
        let requests = [
            RouteRequest { from: Coord::new(2, 0), to: Coord::new(2, 7) },
            RouteRequest { from: Coord::new(8, 0), to: Coord::new(8, 7) },
        ];
        let pins = RowColumn::default().assign(16, 8).unwrap();
        let paths = route_concurrent_pinned(&grid, &requests, &pins).unwrap();
        assert_eq!(paths, route_concurrent(&grid, &requests).unwrap());
        check_pin_constraints(&paths, &pins);
    }

    #[test]
    fn broadcast_routes_stay_pin_safe() {
        use dmf_pins::{Broadcast, ChipBackend};
        let grid = Grid::new(16, 16);
        // Broadcast tiles pins at radius 5 in both axes, so a droplet
        // parked at (1,5) shadows every actuation whose group hits its
        // zone (columns ≡ 0..2, rows ≡ 4..6 mod 5). The mover descends
        // column 7 (≡ 2), which ghosts into column 2 — it must shift to
        // a compatible column and land on a ghost-clear row.
        let requests = [
            RouteRequest { from: Coord::new(1, 5), to: Coord::new(1, 5) },
            RouteRequest { from: Coord::new(7, 0), to: Coord::new(7, 13) },
        ];
        let pins = Broadcast::default().assign(16, 16).unwrap();
        let paths = route_concurrent_pinned(&grid, &requests, &pins).unwrap();
        check_fluidic_constraints(&paths);
        check_pin_constraints(&paths, &pins);
        let plain = route_concurrent(&grid, &requests).unwrap();
        assert_ne!(plain, paths, "broadcast ghosts had no effect on a hazardous scenario");
    }

    #[test]
    fn timed_path_accessors() {
        let p = TimedPath::new(vec![Coord::new(0, 0), Coord::new(0, 0), Coord::new(1, 0)]).unwrap();
        assert_eq!(p.at(0), Coord::new(0, 0));
        assert_eq!(p.at(99), Coord::new(1, 0));
        assert_eq!(p.actuations(), 1);
        assert_eq!(p.duration(), 2);
        assert_eq!(p.cells().len(), 3);
    }

    #[test]
    fn empty_timed_path_is_unrepresentable() {
        // Regression: an empty path used to report Coord::default() from
        // `at`, which `conflicts()` then treated as a phantom droplet parked
        // at (0,0). The constructor now rejects emptiness outright.
        assert_eq!(TimedPath::new(vec![]), Err(RouteError::EmptyPath));
        // A single-cell path is the minimal droplet: parked forever.
        let parked = TimedPath::new(vec![Coord::new(3, 3)]).unwrap();
        assert_eq!(parked.duration(), 0);
        assert_eq!(parked.actuations(), 0);
        assert_eq!(parked.at(0), Coord::new(3, 3));
        assert_eq!(parked.at(1000), Coord::new(3, 3));
    }

    #[test]
    fn horizon_survives_huge_request_batches() {
        // Regression: `8 * requests.len() as i32` wrapped for large batches,
        // collapsing the horizon to a tiny or negative window. The usize
        // computation must stay monotonic instead.
        let grid = Grid::new(16, 16);
        let small = search_horizon(&grid, 2);
        assert_eq!(small, (16 + 16) * 4 + 2 * 8);
        let huge = search_horizon(&grid, 300_000_000);
        assert!(huge >= 2_400_000_000, "horizon wrapped: {huge}");
        assert!(search_horizon(&grid, usize::MAX) == usize::MAX, "must saturate, not wrap");
        // Monotonic in the batch size: more droplets never shrink the
        // search window.
        assert!(huge > small);
    }
}
