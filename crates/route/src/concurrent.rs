use crate::{Grid, RouteError};
use dmf_chip::Coord;
use std::collections::{BinaryHeap, HashMap};

/// One droplet transport request for [`route_concurrent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRequest {
    /// Starting electrode.
    pub from: Coord,
    /// Destination electrode.
    pub to: Coord,
}

/// A space-time path: `cells[t]` is the droplet's electrode at step `t`.
/// Droplets may wait (`cells[t] == cells[t + 1]`); after its last entry a
/// droplet is considered parked at its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedPath {
    /// Per-step positions, starting at the source.
    pub cells: Vec<Coord>,
}

impl TimedPath {
    /// Position at step `t`, clamping to the final cell after arrival. An
    /// empty path (which [`route_concurrent`] never produces) reports the
    /// origin electrode rather than panicking.
    pub fn at(&self, t: usize) -> Coord {
        self.cells.get(t).or_else(|| self.cells.last()).copied().unwrap_or_default()
    }

    /// Electrode actuations (hops onto a new electrode).
    pub fn actuations(&self) -> u32 {
        crate::actuations(&self.cells)
    }

    /// Steps until arrival.
    pub fn duration(&self) -> usize {
        self.cells.len().saturating_sub(1)
    }
}

/// Routes several droplets simultaneously with prioritised space-time A*.
///
/// Requests are planned in order; each later droplet treats the earlier
/// ones' timed paths as moving obstacles under the static and dynamic
/// fluidic constraints (8-neighborhood separation against both the current
/// and the previous position of every other droplet).
///
/// # Errors
///
/// Returns [`RouteError::Unroutable`] when some droplet cannot reach its
/// destination within the search horizon, with the request index attached.
///
/// # Examples
///
/// ```
/// use dmf_chip::Coord;
/// use dmf_route::{route_concurrent, Grid, RouteRequest};
///
/// let grid = Grid::new(8, 8);
/// let paths = route_concurrent(
///     &grid,
///     &[
///         RouteRequest { from: Coord::new(0, 0), to: Coord::new(7, 0) },
///         RouteRequest { from: Coord::new(0, 4), to: Coord::new(7, 4) },
///     ],
/// )?;
/// assert_eq!(paths.len(), 2);
/// # Ok::<(), dmf_route::RouteError>(())
/// ```
pub fn route_concurrent(
    grid: &Grid,
    requests: &[RouteRequest],
) -> Result<Vec<TimedPath>, RouteError> {
    let mut planned: Vec<TimedPath> = Vec::with_capacity(requests.len());
    // Generous horizon: grid perimeter plus congestion allowance.
    let horizon = ((grid.width() + grid.height()) * 4 + 8 * requests.len() as i32) as usize;
    for (index, request) in requests.iter().enumerate() {
        let path = space_time_astar(grid, *request, &planned, horizon)
            .ok_or(RouteError::Unroutable { index, from: request.from, to: request.to })?;
        planned.push(path);
    }
    Ok(planned)
}

fn conflicts(planned: &[TimedPath], pos: Coord, prev: Coord, t: usize) -> bool {
    for other in planned {
        let other_now = other.at(t);
        let other_prev = other.at(t.saturating_sub(1));
        // Static constraint at step t.
        if pos.touches(other_now) {
            return true;
        }
        // Dynamic constraints: no move into another droplet's wake, and the
        // other droplet must not move into ours.
        if pos.touches(other_prev) || prev.touches(other_now) {
            return true;
        }
    }
    false
}

fn space_time_astar(
    grid: &Grid,
    request: RouteRequest,
    planned: &[TimedPath],
    horizon: usize,
) -> Option<TimedPath> {
    if !grid.passable(request.from) || !grid.passable(request.to) {
        return None;
    }
    #[derive(PartialEq, Eq)]
    struct Item(std::cmp::Reverse<(u32, usize)>, Coord, usize); // (f, t) pos t
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.cmp(&other.0)
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut open: BinaryHeap<Item> = BinaryHeap::new();
    let mut best: HashMap<(Coord, usize), u32> = HashMap::new();
    let mut came: HashMap<(Coord, usize), (Coord, usize)> = HashMap::new();
    if conflicts(planned, request.from, request.from, 0) {
        return None;
    }
    best.insert((request.from, 0), 0);
    open.push(Item(std::cmp::Reverse((request.from.manhattan(request.to), 0)), request.from, 0));
    while let Some(Item(_, pos, t)) = open.pop() {
        if pos == request.to {
            // The droplet parks here: verify no later conflicts while the
            // remaining planned droplets finish moving.
            let tail_clear =
                (t + 1..=max_duration(planned)).all(|tt| !conflicts(planned, pos, pos, tt));
            if tail_clear {
                let mut cells = vec![pos];
                let mut key = (pos, t);
                while let Some(&prev) = came.get(&key) {
                    cells.push(prev.0);
                    key = prev;
                }
                cells.reverse();
                return Some(TimedPath { cells });
            }
        }
        if t >= horizon {
            continue;
        }
        let g = best[&(pos, t)];
        let mut candidates = vec![pos];
        candidates.extend(pos.orthogonal_neighbors());
        for next in candidates {
            if !grid.passable(next) {
                continue;
            }
            if conflicts(planned, next, pos, t + 1) {
                continue;
            }
            let cost = g + u32::from(next != pos);
            let key = (next, t + 1);
            if cost < best.get(&key).copied().unwrap_or(u32::MAX) {
                best.insert(key, cost);
                came.insert(key, (pos, t));
                open.push(Item(
                    std::cmp::Reverse((cost + next.manhattan(request.to), t + 1)),
                    next,
                    t + 1,
                ));
            }
        }
    }
    None
}

fn max_duration(planned: &[TimedPath]) -> usize {
    planned.iter().map(TimedPath::duration).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_fluidic_constraints(paths: &[TimedPath]) {
        let steps = paths.iter().map(TimedPath::duration).max().unwrap_or(0);
        for t in 0..=steps {
            for i in 0..paths.len() {
                for j in 0..paths.len() {
                    if i == j {
                        continue;
                    }
                    let a = paths[i].at(t);
                    let b = paths[j].at(t);
                    assert!(!a.touches(b), "static violation at t={t}: {a} vs {b}");
                    if t > 0 {
                        let b_prev = paths[j].at(t - 1);
                        assert!(!a.touches(b_prev), "dynamic violation at t={t}: {a} vs {b_prev}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_lanes_do_not_interact() {
        let grid = Grid::new(10, 10);
        let paths = route_concurrent(
            &grid,
            &[
                RouteRequest { from: Coord::new(0, 0), to: Coord::new(9, 0) },
                RouteRequest { from: Coord::new(0, 5), to: Coord::new(9, 5) },
            ],
        )
        .unwrap();
        assert_eq!(paths[0].actuations(), 9);
        assert_eq!(paths[1].actuations(), 9);
        check_fluidic_constraints(&paths);
    }

    #[test]
    fn crossing_droplets_wait_or_detour() {
        let grid = Grid::new(9, 9);
        let paths = route_concurrent(
            &grid,
            &[
                RouteRequest { from: Coord::new(0, 4), to: Coord::new(8, 4) },
                RouteRequest { from: Coord::new(4, 0), to: Coord::new(4, 8) },
            ],
        )
        .unwrap();
        check_fluidic_constraints(&paths);
        // The second droplet pays something (wait or detour).
        assert!(paths[1].duration() >= 8);
    }

    #[test]
    fn head_on_corridor_requires_separate_timing() {
        // A 1-wide corridor cannot host two opposite droplets; the planner
        // must fail rather than violate constraints.
        let mut grid = Grid::new(9, 3);
        for x in 0..9 {
            grid.block(Coord::new(x, 0));
            grid.block(Coord::new(x, 2));
        }
        grid.unblock(Coord::new(0, 0)); // leave start/ends clear enough
        let result = route_concurrent(
            &grid,
            &[
                RouteRequest { from: Coord::new(1, 1), to: Coord::new(7, 1) },
                RouteRequest { from: Coord::new(7, 1), to: Coord::new(1, 1) },
            ],
        );
        assert!(matches!(result, Err(RouteError::Unroutable { index: 1, .. })));
    }

    #[test]
    fn many_droplets_on_open_grid() {
        let grid = Grid::new(16, 16);
        let requests: Vec<RouteRequest> = (0..5)
            .map(|i| RouteRequest { from: Coord::new(0, 3 * i), to: Coord::new(15, 3 * (4 - i)) })
            .collect();
        let paths = route_concurrent(&grid, &requests).unwrap();
        check_fluidic_constraints(&paths);
        assert_eq!(paths.len(), 5);
    }

    #[test]
    fn timed_path_accessors() {
        let p = TimedPath { cells: vec![Coord::new(0, 0), Coord::new(0, 0), Coord::new(1, 0)] };
        assert_eq!(p.at(0), Coord::new(0, 0));
        assert_eq!(p.at(99), Coord::new(1, 0));
        assert_eq!(p.actuations(), 1);
        assert_eq!(p.duration(), 2);
    }
}
