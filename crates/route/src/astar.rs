use crate::{Grid, RouteError};
use dmf_chip::Coord;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A* shortest path for a single droplet among static obstacles.
///
/// `avoid` carries temporarily forbidden cells — typically the guard bands
/// of droplets parked elsewhere on the chip. The returned path starts at
/// `from` and ends at `to`, one orthogonal hop per element. Returns `None`
/// when no route exists.
///
/// # Examples
///
/// ```
/// use dmf_chip::Coord;
/// use dmf_route::{shortest_path, Grid};
///
/// let mut grid = Grid::new(5, 3);
/// // Wall with a gap at the bottom.
/// grid.block(Coord::new(2, 0));
/// grid.block(Coord::new(2, 1));
/// let path = shortest_path(&grid, Coord::new(0, 0), Coord::new(4, 0), &Default::default())
///     .expect("detour exists");
/// assert_eq!(path.first(), Some(&Coord::new(0, 0)));
/// assert_eq!(path.last(), Some(&Coord::new(4, 0)));
/// assert!(path.len() > 5); // forced below the wall
/// ```
pub fn shortest_path(
    grid: &Grid,
    from: Coord,
    to: Coord,
    avoid: &HashSet<Coord>,
) -> Option<Vec<Coord>> {
    // Endpoints may sit on blocked or avoided cells (module ports live
    // inside footprints); everything else must be passable and un-avoided.
    let ok = |c: Coord| c == from || c == to || (grid.passable(c) && !avoid.contains(&c));
    let in_bounds = |c: Coord| c.x >= 0 && c.x < grid.width() && c.y >= 0 && c.y < grid.height();
    if !in_bounds(from) || !in_bounds(to) {
        return None;
    }
    // Min-heap keyed by f = g + h.
    let mut open: BinaryHeap<(std::cmp::Reverse<u32>, Coord)> = BinaryHeap::new();
    let mut g_score: HashMap<Coord, u32> = HashMap::new();
    let mut came: HashMap<Coord, Coord> = HashMap::new();
    g_score.insert(from, 0);
    open.push((std::cmp::Reverse(from.manhattan(to)), from));
    while let Some((_, current)) = open.pop() {
        if current == to {
            let mut path = vec![current];
            let mut c = current;
            while let Some(&prev) = came.get(&c) {
                path.push(prev);
                c = prev;
            }
            path.reverse();
            return Some(path);
        }
        let g = g_score[&current];
        for next in current.orthogonal_neighbors() {
            if !ok(next) {
                continue;
            }
            let tentative = g + 1;
            if tentative < g_score.get(&next).copied().unwrap_or(u32::MAX) {
                g_score.insert(next, tentative);
                came.insert(next, current);
                open.push((std::cmp::Reverse(tentative + next.manhattan(to)), next));
            }
        }
    }
    None
}

/// Like [`shortest_path`], but a boxed-in droplet yields a typed
/// [`RouteError::NoRoute`] instead of `None`, so callers can report or
/// recover from the failure rather than asserting.
///
/// # Errors
///
/// Returns [`RouteError::NoRoute`] when no path exists between the
/// endpoints — including when either endpoint lies outside the grid.
///
/// # Examples
///
/// ```
/// use dmf_chip::Coord;
/// use dmf_route::{try_shortest_path, Grid, RouteError};
///
/// let mut grid = Grid::new(3, 1);
/// grid.block(Coord::new(1, 0));
/// let err = try_shortest_path(&grid, Coord::new(0, 0), Coord::new(2, 0), &Default::default())
///     .unwrap_err();
/// assert!(matches!(err, RouteError::NoRoute { .. }));
/// ```
pub fn try_shortest_path(
    grid: &Grid,
    from: Coord,
    to: Coord,
    avoid: &HashSet<Coord>,
) -> Result<Vec<Coord>, RouteError> {
    shortest_path(grid, from, to, avoid).ok_or(RouteError::NoRoute { from, to })
}

/// Number of electrode actuations a path needs: one per hop onto a new
/// electrode (waits are free).
pub fn actuations(path: &[Coord]) -> u32 {
    path.windows(2).filter(|w| w[0] != w[1]).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_is_manhattan_optimal() {
        let grid = Grid::new(10, 10);
        let path =
            shortest_path(&grid, Coord::new(1, 1), Coord::new(7, 4), &Default::default()).unwrap();
        assert_eq!(actuations(&path), 9);
        // Consecutive cells are orthogonal neighbors.
        for w in path.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }

    #[test]
    fn detours_around_walls() {
        let mut grid = Grid::new(7, 5);
        for y in 0..4 {
            grid.block(Coord::new(3, y));
        }
        let path =
            shortest_path(&grid, Coord::new(0, 0), Coord::new(6, 0), &Default::default()).unwrap();
        assert!(actuations(&path) > 6);
        assert!(path.iter().all(|&c| c.x != 3 || c.y == 4));
    }

    #[test]
    fn fully_walled_is_unroutable() {
        let mut grid = Grid::new(5, 5);
        for y in 0..5 {
            grid.block(Coord::new(2, y));
        }
        assert!(
            shortest_path(&grid, Coord::new(0, 0), Coord::new(4, 4), &Default::default()).is_none()
        );
    }

    #[test]
    fn avoid_set_is_respected_except_endpoints() {
        let grid = Grid::new(5, 1);
        let mut avoid = HashSet::new();
        avoid.insert(Coord::new(2, 0));
        // Only corridor cell is avoided => no path.
        assert!(shortest_path(&grid, Coord::new(0, 0), Coord::new(4, 0), &avoid).is_none());
        // Avoiding the destination itself is fine.
        let mut avoid_dst = HashSet::new();
        avoid_dst.insert(Coord::new(4, 0));
        assert!(shortest_path(&grid, Coord::new(0, 0), Coord::new(4, 0), &avoid_dst).is_some());
    }

    #[test]
    fn trivial_path_is_single_cell() {
        let grid = Grid::new(3, 3);
        let c = Coord::new(1, 1);
        let path = shortest_path(&grid, c, c, &Default::default()).unwrap();
        assert_eq!(path, vec![c]);
        assert_eq!(actuations(&path), 0);
    }

    #[test]
    fn out_of_bounds_targets_fail() {
        let grid = Grid::new(3, 3);
        assert!(
            shortest_path(&grid, Coord::new(0, 0), Coord::new(9, 9), &Default::default()).is_none()
        );
    }
}
