use dmf_chip::{ChipSpec, Coord};
use std::collections::HashSet;

/// The routable electrode field: grid bounds plus permanently blocked cells
/// (module footprints and defective electrodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    width: i32,
    height: i32,
    blocked: HashSet<Coord>,
}

impl Grid {
    /// An open grid with no blocked cells.
    pub fn new(width: i32, height: i32) -> Self {
        Grid { width, height, blocked: HashSet::new() }
    }

    /// Builds the routing grid of a chip, blocking every module footprint
    /// except the modules listed in `open` (typically the source and
    /// destination of the current transport). Electrodes diagnosed dead on
    /// the chip ([`ChipSpec::dead_cells`]) are always blocked, even inside
    /// an `open` module.
    pub fn from_spec(spec: &ChipSpec, open: &[dmf_chip::ModuleId]) -> Self {
        let mut grid = Grid::new(spec.width(), spec.height());
        for cell in spec.obstacles(open) {
            grid.block(cell);
        }
        for cell in spec.dead_cells() {
            grid.block(cell);
        }
        grid
    }

    /// Grid width.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> i32 {
        self.height
    }

    /// Marks a cell as permanently unusable.
    pub fn block(&mut self, c: Coord) {
        self.blocked.insert(c);
    }

    /// Unmarks a blocked cell.
    pub fn unblock(&mut self, c: Coord) {
        self.blocked.remove(&c);
    }

    /// Whether `c` is on the grid and not blocked.
    pub fn passable(&self, c: Coord) -> bool {
        c.x >= 0 && c.x < self.width && c.y >= 0 && c.y < self.height && !self.blocked.contains(&c)
    }

    /// The blocked-cell set.
    pub fn blocked(&self) -> &HashSet<Coord> {
        &self.blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_chip::{ModuleKind, Rect};

    #[test]
    fn passability_respects_bounds_and_blocks() {
        let mut g = Grid::new(4, 4);
        assert!(g.passable(Coord::new(0, 0)));
        assert!(!g.passable(Coord::new(4, 0)));
        assert!(!g.passable(Coord::new(-1, 2)));
        g.block(Coord::new(2, 2));
        assert!(!g.passable(Coord::new(2, 2)));
        g.unblock(Coord::new(2, 2));
        assert!(g.passable(Coord::new(2, 2)));
    }

    #[test]
    fn from_spec_blocks_module_footprints() {
        let mut spec = ChipSpec::new(10, 10).unwrap();
        let m = spec.add_module("M1", ModuleKind::Mixer, Rect::new(4, 4, 2, 2)).unwrap();
        let closed = Grid::from_spec(&spec, &[]);
        assert!(!closed.passable(Coord::new(4, 4)));
        let open = Grid::from_spec(&spec, &[m]);
        assert!(open.passable(Coord::new(4, 4)));
    }

    #[test]
    fn from_spec_blocks_dead_electrodes() {
        let mut spec = ChipSpec::new(10, 10).unwrap();
        let m = spec.add_module("M1", ModuleKind::Mixer, Rect::new(4, 4, 2, 2)).unwrap();
        spec.mark_dead(Coord::new(1, 1));
        spec.mark_dead(Coord::new(4, 4));
        let g = Grid::from_spec(&spec, &[m]);
        assert!(!g.passable(Coord::new(1, 1)));
        // Dead cells stay blocked even inside an open module footprint.
        assert!(!g.passable(Coord::new(4, 4)));
        assert!(g.passable(Coord::new(5, 5)));
    }
}
