//! Fault injection for the simulator: deterministic fault plans, the
//! records the simulator keeps about them, and the outcome of a faulty
//! run.
//!
//! The simulator itself stays ignorant of *how* faults are chosen — a
//! fault plan ([`InjectedFaults`]) is plain data produced elsewhere
//! (`dmf-fault` samples one from a seeded RNG, tests write them by hand).
//! [`crate::Simulator::run_faulty`] executes a program under such a plan:
//! droplets hit latent dead electrodes and get stuck, dispense ordinals
//! fail, split ordinals produce out-of-tolerance volumes whose error
//! taints every downstream mix. Checkpoint "sensor" cycles compare the
//! observed droplet state against the plan and turn injected faults into
//! detected ones; an output-port sensor rejects erroneous droplets so no
//! bad target is ever emitted.

use crate::DropletId;
use dmf_chip::{Coord, ModuleId};
use std::collections::BTreeSet;
use std::fmt;

/// A deterministic fault plan for one simulated run.
///
/// All ordinals are 0-based positions within the program: the `n`-th
/// `Dispense` instruction, the `n`-th `MixSplit` instruction. Dead cells
/// are *latent*: the router does not know about them (unlike
/// [`dmf_chip::ChipSpec::dead_cells`], which models already-diagnosed
/// electrodes), so a droplet routed across one gets stuck there.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Electrodes that are stuck (open or closed) but not yet diagnosed.
    pub dead_cells: BTreeSet<Coord>,
    /// 0-based dispense ordinals that produce no droplet.
    pub failed_dispenses: BTreeSet<u64>,
    /// 0-based mix-split ordinals whose split volume falls outside the
    /// forest's split-error margin (both halves are erroneous).
    pub bad_splits: BTreeSet<u64>,
    /// Run a sensor checkpoint every this many schedule cycles (0 =
    /// only the implicit end-of-run checkpoint).
    pub sensor_period: u32,
}

impl InjectedFaults {
    /// Whether the plan injects nothing (checkpoints still run, but can
    /// never fire).
    pub fn is_empty(&self) -> bool {
        self.dead_cells.is_empty() && self.failed_dispenses.is_empty() && self.bad_splits.is_empty()
    }

    /// Total number of faults this plan injects (upper bound: a fault
    /// only manifests when its electrode/ordinal is actually exercised).
    pub fn len(&self) -> usize {
        self.dead_cells.len() + self.failed_dispenses.len() + self.bad_splits.len()
    }
}

/// What kind of physical failure a [`FaultRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A droplet got stuck on a latent dead electrode mid-transport.
    StuckElectrode {
        /// The dead electrode.
        cell: Coord,
    },
    /// A reservoir failed to produce a droplet.
    DispenseFailed {
        /// The reservoir.
        reservoir: ModuleId,
    },
    /// A mix-split produced volumes outside the tolerated margin.
    SplitError {
        /// The mixer.
        mixer: ModuleId,
    },
    /// A droplet was boxed in with no route to its destination
    /// (secondary effect of dead electrodes and stranded droplets).
    Stranded {
        /// Where the droplet was abandoned.
        at: Coord,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckElectrode { cell } => write!(f, "stuck on dead electrode {cell}"),
            FaultKind::DispenseFailed { reservoir } => {
                write!(f, "dispense failed at {reservoir}")
            }
            FaultKind::SplitError { mixer } => write!(f, "split-volume error at {mixer}"),
            FaultKind::Stranded { at } => write!(f, "stranded without a route at {at}"),
        }
    }
}

/// One injected fault, with its detection status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// What happened.
    pub kind: FaultKind,
    /// The droplet the fault first manifested on.
    pub droplet: DropletId,
    /// Schedule cycle active at injection.
    pub injected_cycle: u32,
    /// Schedule cycle of the sensor checkpoint that noticed it (`None`
    /// only while the run is still in flight — the end-of-run checkpoint
    /// detects everything).
    pub detected_cycle: Option<u32>,
}

/// The result of one fault-injected run: the usual report and trace plus
/// the fault records and the droplets that survived on chip.
///
/// A faulty run never aborts on fluid loss — lost droplets cascade
/// (instructions referencing them are skipped) and whatever is left on
/// chip at the end is reported as `survivors`, the salvageable pool the
/// recovery planner works from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultyOutcome {
    /// Aggregate statistics (including `faults_injected`,
    /// `faults_detected` and `droplets_lost`).
    pub report: crate::SimReport,
    /// The full event log, including `FaultInjected`/`FaultDetected`.
    pub trace: crate::Trace,
    /// Every injected fault in injection order.
    pub faults: Vec<FaultRecord>,
    /// Droplets still on chip (or quarantined by the sensor controller)
    /// at the end of the run, in id order. All are fault-free: erroneous
    /// droplets are rejected by the final checkpoint.
    pub survivors: Vec<DropletId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let f = InjectedFaults::default();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        let mut g = f.clone();
        g.failed_dispenses.insert(3);
        assert!(!g.is_empty());
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn fault_kinds_render() {
        let kinds = [
            FaultKind::StuckElectrode { cell: Coord::new(1, 2) },
            FaultKind::DispenseFailed { reservoir: ModuleId(0) },
            FaultKind::SplitError { mixer: ModuleId(1) },
            FaultKind::Stranded { at: Coord::new(3, 4) },
        ];
        for k in kinds {
            assert!(!k.to_string().is_empty());
        }
    }
}
