//! Execution traces: a per-instruction event log of everything the
//! simulator did, for debugging compiled programs and inspecting droplet
//! life cycles.

use crate::{DropletId, FaultKind};
use dmf_chip::{Coord, ModuleId};
use std::fmt;

/// One observed simulator event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A droplet appeared at a reservoir port.
    Dispensed {
        /// The new droplet.
        droplet: DropletId,
        /// The reservoir.
        reservoir: ModuleId,
        /// The port electrode.
        at: Coord,
    },
    /// A droplet moved along a path.
    Moved {
        /// The droplet.
        droplet: DropletId,
        /// Starting electrode.
        from: Coord,
        /// Final electrode.
        to: Coord,
        /// Electrode hops (actuations).
        hops: u32,
    },
    /// Two droplets merged and split at a mixer.
    Mixed {
        /// The mixer.
        mixer: ModuleId,
        /// Consumed droplets.
        inputs: [DropletId; 2],
        /// Produced droplets.
        outputs: [DropletId; 2],
    },
    /// A droplet parked in a storage cell.
    Stored {
        /// The droplet.
        droplet: DropletId,
        /// The cell.
        cell: ModuleId,
    },
    /// A droplet left its storage cell.
    Fetched {
        /// The droplet.
        droplet: DropletId,
        /// The cell.
        cell: ModuleId,
    },
    /// A droplet went to waste.
    Discarded {
        /// The droplet.
        droplet: DropletId,
    },
    /// A target droplet left the chip.
    Emitted {
        /// The droplet.
        droplet: DropletId,
    },
    /// A fault manifested on a droplet (fault-injected runs only).
    FaultInjected {
        /// The droplet the fault first hit.
        droplet: DropletId,
        /// What happened.
        kind: FaultKind,
    },
    /// A sensor noticed a fault: a checkpoint found a droplet missing or
    /// erroneous, or the output-port sensor rejected a bad target.
    FaultDetected {
        /// The droplet the detection names.
        droplet: DropletId,
    },
}

/// A timestamped event: the schedule cycle active when it happened and the
/// instruction index that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// Index of the causing instruction within the program.
    pub step: usize,
    /// Schedule cycle active at that point (0 before the first marker).
    pub cycle: u32,
    /// What happened.
    pub event: TraceEvent,
}

/// The full event log of one simulated program run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    pub(crate) events: Vec<TimedEvent>,
}

impl Trace {
    /// All events in execution order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The life cycle of one droplet: every event that mentions it, in
    /// order — dispense/mix birth through storage hops to emission,
    /// disposal or consumption.
    pub fn droplet_history(&self, droplet: DropletId) -> Vec<&TimedEvent> {
        self.events
            .iter()
            .filter(|e| match &e.event {
                TraceEvent::Dispensed { droplet: d, .. }
                | TraceEvent::Moved { droplet: d, .. }
                | TraceEvent::Stored { droplet: d, .. }
                | TraceEvent::Fetched { droplet: d, .. }
                | TraceEvent::Discarded { droplet: d }
                | TraceEvent::Emitted { droplet: d }
                | TraceEvent::FaultInjected { droplet: d, .. }
                | TraceEvent::FaultDetected { droplet: d } => *d == droplet,
                TraceEvent::Mixed { inputs, outputs, .. } => {
                    inputs.contains(&droplet) || outputs.contains(&droplet)
                }
            })
            .collect()
    }

    /// Events that happened during one schedule cycle.
    pub fn cycle_events(&self, cycle: u32) -> Vec<&TimedEvent> {
        self.events.iter().filter(|e| e.cycle == cycle).collect()
    }

    /// Renders the trace as a compact text timeline, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_cycle = u32::MAX;
        for e in &self.events {
            if e.cycle != last_cycle {
                out.push_str(&format!("— cycle {} —\n", e.cycle));
                last_cycle = e.cycle;
            }
            out.push_str(&format!("  [{:>4}] {}\n", e.step, e.event));
        }
        out
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Dispensed { droplet, reservoir, at } => {
                write!(f, "{droplet} dispensed from {reservoir} at {at}")
            }
            TraceEvent::Moved { droplet, from, to, hops } => {
                write!(f, "{droplet} moved {from} -> {to} ({hops} hops)")
            }
            TraceEvent::Mixed { mixer, inputs, outputs } => write!(
                f,
                "{} + {} mixed at {mixer} -> {} + {}",
                inputs[0], inputs[1], outputs[0], outputs[1]
            ),
            TraceEvent::Stored { droplet, cell } => write!(f, "{droplet} stored in {cell}"),
            TraceEvent::Fetched { droplet, cell } => write!(f, "{droplet} fetched from {cell}"),
            TraceEvent::Discarded { droplet } => write!(f, "{droplet} discarded to waste"),
            TraceEvent::Emitted { droplet } => write!(f, "{droplet} emitted as target"),
            TraceEvent::FaultInjected { droplet, kind } => {
                write!(f, "{droplet} fault injected: {kind}")
            }
            TraceEvent::FaultDetected { droplet } => {
                write!(f, "{droplet} fault detected by sensor")
            }
        }
    }
}
