use dmf_chip::{Coord, ModuleId};
use std::fmt;

/// Identifier of a droplet within one [`ChipProgram`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DropletId(pub u64);

impl fmt::Display for DropletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// One primitive chip operation.
///
/// Programs are sequences of instructions; the simulator executes them in
/// order (transport phases are serialized — see the crate docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// Dispense a fresh unit droplet at a fluid reservoir's port.
    Dispense {
        /// The reservoir to dispense from.
        reservoir: ModuleId,
        /// Identifier for the new droplet.
        droplet: DropletId,
    },
    /// Move a droplet along an explicit electrode path (first cell must be
    /// the droplet's current position).
    Transport {
        /// The droplet to move.
        droplet: DropletId,
        /// The path, one orthogonal hop per element.
        path: Vec<Coord>,
    },
    /// Move a droplet to a module's port, letting the simulator route it
    /// (A* around module footprints and parked droplets).
    TransportTo {
        /// The droplet to move.
        droplet: DropletId,
        /// Destination module.
        module: ModuleId,
    },
    /// Merge two droplets waiting at a mixer's port and split the result
    /// into two fresh unit droplets (one (1:1) mix-split, one time-cycle).
    MixSplit {
        /// The executing mixer.
        mixer: ModuleId,
        /// First input droplet.
        a: DropletId,
        /// Second input droplet.
        b: DropletId,
        /// First output droplet id.
        out_a: DropletId,
        /// Second output droplet id.
        out_b: DropletId,
    },
    /// Park a droplet in a storage cell (the droplet must be at the cell).
    Store {
        /// The droplet to park.
        droplet: DropletId,
        /// The storage cell.
        cell: ModuleId,
    },
    /// Release a parked droplet from its storage cell (it stays on the cell
    /// electrode until transported).
    Fetch {
        /// The droplet to release.
        droplet: DropletId,
        /// The storage cell it occupies.
        cell: ModuleId,
    },
    /// Send a droplet at a waste reservoir's port to waste.
    Discard {
        /// The droplet to discard.
        droplet: DropletId,
        /// The waste reservoir.
        waste: ModuleId,
    },
    /// Emit a target droplet off-chip at an output port.
    Emit {
        /// The droplet to emit.
        droplet: DropletId,
        /// The output port.
        output: ModuleId,
    },
    /// Marks the start of a schedule time-cycle (for reporting only).
    CycleMarker {
        /// 1-based schedule cycle.
        cycle: u32,
    },
}

/// A complete droplet-level realisation of a schedule on a specific chip.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChipProgram {
    instructions: Vec<Instruction>,
}

impl ChipProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        ChipProgram::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of mix-split instructions (should equal the schedule's `Tms`).
    pub fn mix_count(&self) -> usize {
        self.instructions.iter().filter(|i| matches!(i, Instruction::MixSplit { .. })).count()
    }
}

impl FromIterator<Instruction> for ChipProgram {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        ChipProgram { instructions: iter.into_iter().collect() }
    }
}

impl Extend<Instruction> for ChipProgram {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_collects_and_counts() {
        let program: ChipProgram = vec![
            Instruction::CycleMarker { cycle: 1 },
            Instruction::MixSplit {
                mixer: ModuleId(0),
                a: DropletId(0),
                b: DropletId(1),
                out_a: DropletId(2),
                out_b: DropletId(3),
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(program.len(), 2);
        assert_eq!(program.mix_count(), 1);
        assert!(!program.is_empty());
    }
}
