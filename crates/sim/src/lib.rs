//! Cycle-level digital-microfluidic biochip simulator.
//!
//! Executes a [`ChipProgram`] — the fully placed and routed realisation of a
//! mixing-forest schedule — against a [`dmf_chip::ChipSpec`], enforcing the
//! physical rules of an electrowetting chip and accounting for every
//! electrode actuation:
//!
//! * droplets exist only where they were dispensed or produced, and move
//!   one adjacent electrode per hop along explicitly routed paths;
//! * a moving droplet never enters the 8-neighborhood of a parked droplet
//!   (transport phases are serialized, see `DESIGN.md` §5 — the paper's
//!   `Tc` is measured in mix-split cycles, while transport is accounted in
//!   electrode actuations exactly as Fig. 5 does);
//! * storage cells hold at most one droplet; mixers mix exactly two;
//! * every hop onto an electrode actuates it once — the reliability metric
//!   the paper uses to compare its engine (386 actuations) against
//!   repeated mixture preparation (980 actuations).
//!
//! The simulator is deliberately strict: any rule violation aborts with a
//! descriptive [`SimError`] rather than producing silently wrong statistics.
//! [`Simulator::run_traced`] additionally records a full event log
//! ([`Trace`]) — droplet life cycles, storage hops and mix events with
//! cycle attribution — for debugging compiled programs.
//!
//! # Examples
//!
//! ```
//! use dmf_chip::presets::pcr_chip;
//! use dmf_sim::{ChipProgram, DropletId, Instruction, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chip = pcr_chip();
//! let r1 = chip.reservoir_for(0).expect("preset has R1").id();
//! let w1 = chip.waste_reservoirs().next().expect("preset has W1").id();
//! let d = DropletId(0);
//! let mut program = ChipProgram::new();
//! program.push(Instruction::Dispense { reservoir: r1, droplet: d });
//! program.push(Instruction::TransportTo { droplet: d, module: w1 });
//! program.push(Instruction::Discard { droplet: d, waste: w1 });
//! let report = Simulator::new(&chip).run(&program)?;
//! assert_eq!(report.discarded, 1);
//! assert!(report.transport_actuations > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
mod error;
mod fault;
mod program;
mod report;
mod simulator;
mod trace;

pub use error::SimError;
pub use fault::{FaultKind, FaultRecord, FaultyOutcome, InjectedFaults};
pub use program::{ChipProgram, DropletId, Instruction};
pub use report::SimReport;
pub use simulator::Simulator;
pub use trace::{TimedEvent, Trace, TraceEvent};
