use crate::DropletId;
use dmf_chip::{Coord, ModuleId};
use std::error::Error;
use std::fmt;

/// A physical-rule violation detected during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An instruction references a droplet that does not exist (not yet
    /// dispensed, already consumed, discarded or emitted).
    UnknownDroplet {
        /// The missing droplet.
        droplet: DropletId,
    },
    /// A droplet id was reused while the droplet still exists.
    DuplicateDroplet {
        /// The duplicated id.
        droplet: DropletId,
    },
    /// An instruction references a module of the wrong kind (e.g. mixing at
    /// a reservoir).
    WrongModuleKind {
        /// The offending module.
        module: ModuleId,
        /// What the instruction expected.
        expected: &'static str,
    },
    /// A transport path is malformed: does not start at the droplet's
    /// position, leaves the grid, or contains a non-adjacent hop.
    BadPath {
        /// The droplet being moved.
        droplet: DropletId,
        /// Human-readable reason.
        reason: String,
    },
    /// A moving droplet violated the fluidic spacing constraint against a
    /// parked droplet.
    FluidicViolation {
        /// The moving droplet.
        moving: DropletId,
        /// The parked droplet it approached.
        parked: DropletId,
        /// Where the contact happened.
        at: Coord,
    },
    /// A droplet is not where the instruction needs it to be.
    Misplaced {
        /// The droplet.
        droplet: DropletId,
        /// Where it must be.
        expected: Coord,
        /// Where it is.
        actual: Coord,
    },
    /// A storage cell is already occupied (or freed while empty).
    StorageBusy {
        /// The storage cell.
        cell: ModuleId,
    },
    /// No route exists for a `TransportTo` instruction.
    NoRoute {
        /// The droplet being moved.
        droplet: DropletId,
        /// Destination module.
        module: ModuleId,
    },
    /// Under a pin-constrained backend, an actuation's ghost electrode
    /// (another member of the driven pin's group) fired inside a parked
    /// droplet's fluidic exclusion zone — a co-activation hazard that
    /// could drag or split it.
    PinConflict {
        /// The droplet whose dispense or hop drove the shared pin.
        moving: DropletId,
        /// The parked droplet endangered by the ghost actuation.
        parked: DropletId,
        /// The electrode intentionally actuated.
        actuated: Coord,
        /// Where the endangered droplet sits.
        at: Coord,
    },
    /// Droplets remained on-chip when the program ended.
    LeftoverDroplets {
        /// How many droplets were left behind.
        count: usize,
    },
    /// The simulator's own bookkeeping broke an internal invariant (e.g. a
    /// fault-mode handler ran without a fault context). Indicates a bug in
    /// the simulator, never in the program being executed.
    Internal {
        /// The invariant that did not hold.
        invariant: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownDroplet { droplet } => write!(f, "droplet {droplet} does not exist"),
            SimError::DuplicateDroplet { droplet } => {
                write!(f, "droplet id {droplet} is already in use")
            }
            SimError::WrongModuleKind { module, expected } => {
                write!(f, "module {module} is not {expected}")
            }
            SimError::BadPath { droplet, reason } => {
                write!(f, "bad transport path for {droplet}: {reason}")
            }
            SimError::FluidicViolation { moving, parked, at } => {
                write!(f, "droplet {moving} touched parked droplet {parked} at {at}")
            }
            SimError::Misplaced { droplet, expected, actual } => {
                write!(f, "droplet {droplet} is at {actual}, needed at {expected}")
            }
            SimError::StorageBusy { cell } => write!(f, "storage cell {cell} occupancy conflict"),
            SimError::NoRoute { droplet, module } => {
                write!(f, "no route for droplet {droplet} to module {module}")
            }
            SimError::PinConflict { moving, parked, actuated, at } => {
                write!(
                    f,
                    "actuating {actuated} for droplet {moving} ghost-fires next to \
                     parked droplet {parked} at {at} (shared-pin co-activation hazard)"
                )
            }
            SimError::LeftoverDroplets { count } => {
                write!(f, "{count} droplet(s) left on chip at program end")
            }
            SimError::Internal { invariant } => {
                write!(f, "simulator invariant violated: {invariant}")
            }
        }
    }
}

impl Error for SimError {}
