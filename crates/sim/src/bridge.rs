//! [`TraceEvent`] → [`Recorder`] bridge.
//!
//! Folds a simulator event log (or a finished [`SimReport`]) into the
//! `sim.*` counters and gauges of a [`dmf_obs::Recorder`], so an observed
//! run can be compared metric-for-metric against the schedule that
//! produced it: `sim.storage_peak` against the schedule's `q`,
//! `sim.waste_droplets` against the plan's `W`, `sim.mix_splits` against
//! `Tms`.
//!
//! Both functions are no-ops (no allocation, no locking) when the target
//! recorder is disabled.

use crate::{SimReport, Trace, TraceEvent};
use dmf_obs::Recorder;

/// Folds an event log into `recorder`.
///
/// Derives every `sim.*` metric from first principles — storage occupancy
/// is replayed from `Stored`/`Fetched` pairs rather than copied from the
/// report — so this is also an independent check of the simulator's own
/// accounting.
pub fn record_trace(recorder: &Recorder, trace: &Trace) {
    if !recorder.is_enabled() {
        return;
    }
    let mut occupancy: u64 = 0;
    let mut peak: u64 = 0;
    let mut mix_splits: u64 = 0;
    let mut dispensed: u64 = 0;
    let mut discarded: u64 = 0;
    let mut emitted: u64 = 0;
    let mut hops: u64 = 0;
    let mut injected: u64 = 0;
    let mut detected: u64 = 0;
    for timed in trace.events() {
        match &timed.event {
            TraceEvent::Dispensed { .. } => dispensed += 1,
            TraceEvent::Moved { hops: h, .. } => hops += u64::from(*h),
            TraceEvent::Mixed { .. } => mix_splits += 1,
            TraceEvent::Stored { .. } => {
                occupancy += 1;
                peak = peak.max(occupancy);
            }
            TraceEvent::Fetched { .. } => occupancy = occupancy.saturating_sub(1),
            TraceEvent::Discarded { .. } => discarded += 1,
            TraceEvent::Emitted { .. } => emitted += 1,
            TraceEvent::FaultInjected { .. } => injected += 1,
            TraceEvent::FaultDetected { .. } => detected += 1,
        }
    }
    recorder.count("sim.mix_splits", mix_splits);
    recorder.count("sim.dispensed", dispensed);
    recorder.count("sim.waste_droplets", discarded);
    recorder.count("sim.emitted", emitted);
    recorder.count("sim.droplet_hops", hops);
    // Every hop and every dispense actuates one electrode (matching
    // `SimReport::electrode_actuations`).
    recorder.count("sim.electrode_actuations", hops + dispensed);
    recorder.gauge_max("sim.storage_peak", peak);
    // Fault counters appear only on fault-injected runs, so zero-fault
    // exports stay identical to the pre-fault schema.
    if injected > 0 {
        recorder.count("fault.injected", injected);
    }
    if detected > 0 {
        recorder.count("fault.detected", detected);
    }
}

/// Folds a finished report into `recorder`.
///
/// The simulator calls this on every successful run, so enabling the
/// global recorder is all it takes to get `sim.*` metrics from existing
/// call sites.
pub fn record_report(recorder: &Recorder, report: &SimReport) {
    if !recorder.is_enabled() {
        return;
    }
    recorder.count("sim.mix_splits", report.mix_splits);
    recorder.count("sim.dispensed", report.dispensed);
    recorder.count("sim.waste_droplets", report.discarded);
    recorder.count("sim.emitted", report.emitted);
    recorder.count("sim.droplet_hops", report.transport_actuations);
    recorder.count("sim.electrode_actuations", report.transport_actuations + report.dispensed);
    recorder.gauge_max("sim.storage_peak", report.storage_peak as u64);
    recorder.gauge_max("sim.cycles", u64::from(report.cycles));
    if report.faults_injected > 0 {
        recorder.count("fault.injected", report.faults_injected);
    }
    if report.faults_detected > 0 {
        recorder.count("fault.detected", report.faults_detected);
    }
}
