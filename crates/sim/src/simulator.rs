use crate::{
    ChipProgram, DropletId, FaultKind, FaultRecord, FaultyOutcome, InjectedFaults, Instruction,
    SimError, SimReport, Trace,
};
use dmf_chip::{ChipSpec, Coord, ModuleId, ModuleKind};
use dmf_pins::PinAssignment;
use dmf_route::{shortest_path, Grid};
use std::collections::{HashMap, HashSet};

/// Executes [`ChipProgram`]s against a chip, enforcing physical rules and
/// counting electrode actuations.
///
/// See the crate documentation for the execution model. A `Simulator`
/// borrows the chip and can run any number of programs; each run starts
/// from an empty chip.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    chip: &'a ChipSpec,
    /// Whether a program may finish with droplets still on chip.
    allow_leftovers: bool,
    /// Pin-constrained backend to execute under, if any. `None` (or a
    /// direct assignment) means every electrode is individually
    /// addressable and no ghost actuations occur.
    pins: Option<&'a PinAssignment>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `chip`.
    pub fn new(chip: &'a ChipSpec) -> Self {
        Simulator { chip, allow_leftovers: false, pins: None }
    }

    /// Permits programs that leave droplets on the chip (useful for
    /// inspecting partial runs).
    pub fn allow_leftovers(mut self) -> Self {
        self.allow_leftovers = true;
        self
    }

    /// Executes under a pin-constrained backend: every intentional
    /// actuation also fires its ghost electrodes (counted into the wear
    /// heatmap and [`SimReport::ghost_actuations`]), a ghost firing
    /// inside a parked droplet's exclusion zone aborts with
    /// [`SimError::PinConflict`], and ad-hoc `TransportTo` routing steers
    /// around cells whose ghosts would endanger parked droplets.
    ///
    /// A direct (one pin per electrode) assignment is dropped here so
    /// runs stay byte-identical to the unconstrained simulator.
    pub fn with_pins(mut self, pins: &'a PinAssignment) -> Self {
        self.pins = Some(pins).filter(|p| !p.is_direct());
        self
    }

    /// Runs a program from an empty chip.
    ///
    /// # Errors
    ///
    /// Returns the first physical-rule violation as a [`SimError`]; the
    /// statistics gathered up to that point are discarded.
    pub fn run(&self, program: &ChipProgram) -> Result<SimReport, SimError> {
        Ok(self.execute_program(program, false)?.0)
    }

    /// Runs a program and records the full event log alongside the report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_traced(&self, program: &ChipProgram) -> Result<(SimReport, Trace), SimError> {
        let (report, trace) = self.execute_program(program, true)?;
        let trace = trace.ok_or(SimError::Internal { invariant: "traced run records a trace" })?;
        Ok((report, trace))
    }

    /// Runs a program under a fault plan, always traced and tolerant of
    /// leftover droplets (survivors are the point).
    ///
    /// With an empty [`InjectedFaults`] the run is byte-identical to
    /// [`Simulator::run_traced`]: same trace, same report (the fault
    /// counters stay zero). With faults, lost droplets cascade — every
    /// instruction referencing a lost droplet is skipped, a mix with a
    /// lost operand is skipped and quarantines the surviving operand —
    /// and sensor checkpoints (every [`InjectedFaults::sensor_period`]
    /// cycles, plus one at the end of the run) detect missing droplets
    /// and reject erroneous ones to waste, so the program completes with
    /// a truthful account of what survived.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] only for violations the fault model cannot
    /// explain (malformed programs); fluid loss is not an error here.
    pub fn run_faulty(
        &self,
        program: &ChipProgram,
        faults: &InjectedFaults,
    ) -> Result<FaultyOutcome, SimError> {
        let _span = dmf_obs::span!("sim_execute");
        let mut state = SimState::new(self.chip);
        state.pins = self.pins;
        state.trace = Some(Trace::default());
        state.fault = Some(FaultCtx::new(faults.clone()));
        for (step, instruction) in program.instructions().iter().enumerate() {
            state.step = step;
            state.execute_faulty(instruction)?;
        }
        // End-of-run checkpoint: everything still latent becomes detected
        // and no erroneous droplet survives.
        state.sensor_checkpoint()?;
        let ctx = state
            .fault
            .take()
            .ok_or(SimError::Internal { invariant: "fault context in fault mode" })?;
        let mut survivors: Vec<DropletId> = state.droplets.keys().copied().collect();
        survivors.extend(ctx.quarantined.iter().copied());
        survivors.sort_unstable();
        crate::bridge::record_report(dmf_obs::global(), &state.report);
        let trace =
            state.trace.ok_or(SimError::Internal { invariant: "traced run records a trace" })?;
        Ok(FaultyOutcome { report: state.report, trace, faults: ctx.records, survivors })
    }

    fn execute_program(
        &self,
        program: &ChipProgram,
        traced: bool,
    ) -> Result<(SimReport, Option<Trace>), SimError> {
        let _span = dmf_obs::span!("sim_execute");
        let mut state = SimState::new(self.chip);
        state.pins = self.pins;
        if traced {
            state.trace = Some(Trace::default());
        }
        for (step, instruction) in program.instructions().iter().enumerate() {
            state.step = step;
            state.execute(instruction)?;
        }
        if !self.allow_leftovers && !state.droplets.is_empty() {
            return Err(SimError::LeftoverDroplets { count: state.droplets.len() });
        }
        crate::bridge::record_report(dmf_obs::global(), &state.report);
        Ok((state.report, state.trace))
    }
}

/// Fault-mode bookkeeping: the plan being injected and the cascade state
/// (which droplets are lost or carrying a volume error, and which record
/// each traces back to).
struct FaultCtx {
    faults: InjectedFaults,
    /// Lost droplet → index of the originating record in `records`.
    lost: HashMap<DropletId, usize>,
    /// Erroneous droplet → index of the originating record.
    tainted: HashMap<DropletId, usize>,
    records: Vec<FaultRecord>,
    /// Fault-free droplets pulled aside by the controller when their mix
    /// partner was lost (kept off the chip so they cannot contaminate
    /// later rendezvous at the same mixer port).
    quarantined: Vec<DropletId>,
    dispense_seq: u64,
    mix_seq: u64,
}

impl FaultCtx {
    fn new(faults: InjectedFaults) -> Self {
        FaultCtx {
            faults,
            lost: HashMap::new(),
            tainted: HashMap::new(),
            records: Vec::new(),
            quarantined: Vec::new(),
            dispense_seq: 0,
            mix_seq: 0,
        }
    }
}

struct SimState<'a> {
    chip: &'a ChipSpec,
    droplets: HashMap<DropletId, Coord>,
    storage: HashMap<ModuleId, DropletId>,
    report: SimReport,
    trace: Option<Trace>,
    step: usize,
    fault: Option<FaultCtx>,
    pins: Option<&'a PinAssignment>,
}

impl<'a> SimState<'a> {
    fn new(chip: &'a ChipSpec) -> Self {
        SimState {
            chip,
            droplets: HashMap::new(),
            storage: HashMap::new(),
            report: SimReport::default(),
            trace: None,
            step: 0,
            fault: None,
            pins: None,
        }
    }

    /// The fault context, which every fault-mode handler relies on.
    ///
    /// Fault-mode entry points install it before dispatching, so a miss is
    /// a simulator bug and surfaces as [`SimError::Internal`] instead of a
    /// panic.
    fn fault_ctx(&mut self) -> Result<&mut FaultCtx, SimError> {
        self.fault.as_mut().ok_or(SimError::Internal { invariant: "fault context in fault mode" })
    }

    fn record(&mut self, event: crate::TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.events.push(crate::TimedEvent {
                step: self.step,
                cycle: self.report.cycles,
                event,
            });
        }
    }

    fn execute(&mut self, instruction: &Instruction) -> Result<(), SimError> {
        match instruction {
            Instruction::Dispense { reservoir, droplet } => {
                let module = self.expect_kind(*reservoir, "a fluid reservoir", |k| {
                    matches!(k, ModuleKind::Reservoir { .. })
                })?;
                if self.droplets.contains_key(droplet) {
                    return Err(SimError::DuplicateDroplet { droplet: *droplet });
                }
                let port = module.port();
                if let Some((parked, at)) = self.droplets.iter().find(|(_, &pos)| pos.touches(port))
                {
                    return Err(SimError::FluidicViolation {
                        moving: *droplet,
                        parked: *parked,
                        at: *at,
                    });
                }
                self.check_pin_hazard(*droplet, port)?;
                self.droplets.insert(*droplet, port);
                self.report.dispensed += 1;
                *self.report.electrode_actuations.entry(port).or_insert(0) += 1;
                self.ghost_actuate(port);
                self.record(crate::TraceEvent::Dispensed {
                    droplet: *droplet,
                    reservoir: *reservoir,
                    at: port,
                });
                Ok(())
            }
            Instruction::Transport { droplet, path } => self.transport(*droplet, path.clone()),
            Instruction::TransportTo { droplet, module } => {
                let target = self
                    .chip
                    .modules()
                    .get(module.0)
                    .ok_or(SimError::WrongModuleKind { module: *module, expected: "present" })?;
                let from = self.position(*droplet)?;
                if from == target.port() {
                    return Ok(());
                }
                let path = self
                    .route(from, target.port(), *droplet)
                    .ok_or(SimError::NoRoute { droplet: *droplet, module: *module })?;
                self.transport(*droplet, path)
            }
            Instruction::MixSplit { mixer, a, b, out_a, out_b } => {
                let module =
                    self.expect_kind(*mixer, "a mixer", |k| matches!(k, ModuleKind::Mixer))?;
                let port = module.port();
                self.expect_at(*a, port)?;
                self.expect_at(*b, port)?;
                for out in [out_a, out_b] {
                    if self.droplets.contains_key(out) && out != a && out != b {
                        return Err(SimError::DuplicateDroplet { droplet: *out });
                    }
                }
                self.droplets.remove(a);
                self.droplets.remove(b);
                self.droplets.insert(*out_a, port);
                self.droplets.insert(*out_b, port);
                self.report.mix_splits += 1;
                self.record(crate::TraceEvent::Mixed {
                    mixer: *mixer,
                    inputs: [*a, *b],
                    outputs: [*out_a, *out_b],
                });
                Ok(())
            }
            Instruction::Store { droplet, cell } => {
                let module = self
                    .expect_kind(*cell, "a storage cell", |k| matches!(k, ModuleKind::Storage))?;
                self.expect_at(*droplet, module.port())?;
                if self.storage.contains_key(cell) {
                    return Err(SimError::StorageBusy { cell: *cell });
                }
                self.storage.insert(*cell, *droplet);
                self.report.storage_peak = self.report.storage_peak.max(self.storage.len());
                self.record(crate::TraceEvent::Stored { droplet: *droplet, cell: *cell });
                Ok(())
            }
            Instruction::Fetch { droplet, cell } => match self.storage.get(cell) {
                Some(d) if d == droplet => {
                    self.storage.remove(cell);
                    self.record(crate::TraceEvent::Fetched { droplet: *droplet, cell: *cell });
                    Ok(())
                }
                _ => Err(SimError::StorageBusy { cell: *cell }),
            },
            Instruction::Discard { droplet, waste } => {
                let module = self
                    .expect_kind(*waste, "a waste reservoir", |k| matches!(k, ModuleKind::Waste))?;
                self.expect_at(*droplet, module.port())?;
                self.droplets.remove(droplet);
                self.report.discarded += 1;
                self.record(crate::TraceEvent::Discarded { droplet: *droplet });
                Ok(())
            }
            Instruction::Emit { droplet, output } => {
                let module = self
                    .expect_kind(*output, "an output port", |k| matches!(k, ModuleKind::Output))?;
                self.expect_at(*droplet, module.port())?;
                self.droplets.remove(droplet);
                self.report.emitted += 1;
                self.record(crate::TraceEvent::Emitted { droplet: *droplet });
                Ok(())
            }
            Instruction::CycleMarker { cycle } => {
                self.report.cycles = self.report.cycles.max(*cycle);
                Ok(())
            }
        }
    }

    fn position(&self, droplet: DropletId) -> Result<Coord, SimError> {
        self.droplets.get(&droplet).copied().ok_or(SimError::UnknownDroplet { droplet })
    }

    fn expect_at(&self, droplet: DropletId, expected: Coord) -> Result<(), SimError> {
        let actual = self.position(droplet)?;
        if actual != expected {
            return Err(SimError::Misplaced { droplet, expected, actual });
        }
        Ok(())
    }

    fn expect_kind(
        &self,
        module: ModuleId,
        expected: &'static str,
        pred: impl Fn(ModuleKind) -> bool,
    ) -> Result<&'a dmf_chip::Module, SimError> {
        let m = self
            .chip
            .modules()
            .get(module.0)
            .ok_or(SimError::WrongModuleKind { module, expected })?;
        if !pred(m.kind()) {
            return Err(SimError::WrongModuleKind { module, expected });
        }
        Ok(m)
    }

    /// Cells a moving droplet must not touch: positions of every other
    /// droplet that is parked on an open cell (droplets inside module
    /// footprints are shielded by the module geometry).
    fn parked_guard(&self, moving: DropletId) -> Vec<(DropletId, Coord)> {
        self.droplets.iter().filter(|(id, _)| **id != moving).map(|(id, pos)| (*id, *pos)).collect()
    }

    /// Pin-safety gate for an intentional actuation of `actuated` by
    /// `moving`: under a shared-pin backend a ghost firing inside a
    /// parked droplet's exclusion zone could drag or split it. Droplets
    /// inside module footprints are shielded by the module geometry,
    /// mirroring the fluidic rule.
    fn check_pin_hazard(&self, moving: DropletId, actuated: Coord) -> Result<(), SimError> {
        let Some(pins) = self.pins else {
            return Ok(());
        };
        let in_module = |c: Coord| self.chip.modules().iter().any(|m| m.rect().contains(c));
        for (other, at) in self.parked_guard(moving) {
            if in_module(at) {
                continue;
            }
            if pins.co_activation_conflict(actuated, at) {
                return Err(SimError::PinConflict { moving, parked: other, actuated, at });
            }
        }
        Ok(())
    }

    /// Accounts the ghost side of an intentional actuation: every other
    /// member of the driven pin's group fires too and wears its electrode.
    fn ghost_actuate(&mut self, actuated: Coord) {
        let Some(pins) = self.pins else {
            return;
        };
        for g in pins.ghosts(actuated) {
            self.report.ghost_actuations += 1;
            *self.report.electrode_actuations.entry(g).or_insert(0) += 1;
        }
    }

    fn transport(&mut self, droplet: DropletId, path: Vec<Coord>) -> Result<(), SimError> {
        let from = self.position(droplet)?;
        let Some((&first, rest)) = path.split_first() else {
            return Err(SimError::BadPath { droplet, reason: "empty path".into() });
        };
        if first != from {
            return Err(SimError::BadPath {
                droplet,
                reason: format!("path starts at {first}, droplet is at {from}"),
            });
        }
        let parked = self.parked_guard(droplet);
        let in_module = |c: Coord| self.chip.modules().iter().any(|m| m.rect().contains(c));
        // Contact inside a mixer footprint is legal: droplets meeting there
        // are about to be merged by the mixer itself.
        let same_mixer = |a: Coord, b: Coord| {
            self.chip.mixers().any(|m| m.rect().contains(a) && m.rect().contains(b))
        };
        let mut pos = from;
        for &next in rest {
            if next.x < 0
                || next.x >= self.chip.width()
                || next.y < 0
                || next.y >= self.chip.height()
            {
                return Err(SimError::BadPath { droplet, reason: format!("{next} off grid") });
            }
            if pos.manhattan(next) > 1 {
                return Err(SimError::BadPath {
                    droplet,
                    reason: format!("non-adjacent hop {pos} -> {next}"),
                });
            }
            for &(other, at) in &parked {
                if !next.touches(at) {
                    continue;
                }
                // Droplets shielded inside a module footprint only conflict
                // when we land on their very cell; meeting inside a mixer is
                // the intended merge.
                let shielded = in_module(at) && at != next;
                if !shielded && !same_mixer(at, next) {
                    return Err(SimError::FluidicViolation { moving: droplet, parked: other, at });
                }
            }
            if pos != next {
                self.check_pin_hazard(droplet, next)?;
                self.report.transport_actuations += 1;
                *self.report.electrode_actuations.entry(next).or_insert(0) += 1;
                self.ghost_actuate(next);
            }
            pos = next;
        }
        let hops = path.windows(2).filter(|w| w[0] != w[1]).count() as u32;
        self.droplets.insert(droplet, pos);
        self.record(crate::TraceEvent::Moved { droplet, from, to: pos, hops });
        Ok(())
    }

    /// Fault-mode dispatcher: cascades losses (instructions referencing a
    /// lost droplet are skipped), injects planned faults at their ordinal
    /// or electrode, propagates split-error taint through mixes, and runs
    /// sensor checkpoints. With an empty plan every arm reduces to
    /// [`SimState::execute`], keeping zero-fault runs byte-identical to
    /// the baseline.
    fn execute_faulty(&mut self, instruction: &Instruction) -> Result<(), SimError> {
        match instruction {
            Instruction::Dispense { reservoir, droplet } => {
                let seq = {
                    let ctx = self.fault_ctx()?;
                    let s = ctx.dispense_seq;
                    ctx.dispense_seq += 1;
                    s
                };
                let fails = self
                    .fault
                    .as_ref()
                    .is_some_and(|ctx| ctx.faults.failed_dispenses.contains(&seq));
                if fails {
                    self.report.droplets_lost += 1;
                    let idx =
                        self.inject(FaultKind::DispenseFailed { reservoir: *reservoir }, *droplet)?;
                    self.mark_lost(*droplet, idx)?;
                    return Ok(());
                }
                self.execute(instruction)
            }
            Instruction::Transport { droplet, path } => {
                if self.is_lost(*droplet) {
                    return Ok(());
                }
                self.transport_with_faults(*droplet, path.clone())
            }
            Instruction::TransportTo { droplet, module } => {
                if self.is_lost(*droplet) {
                    return Ok(());
                }
                let target = self
                    .chip
                    .modules()
                    .get(module.0)
                    .ok_or(SimError::WrongModuleKind { module: *module, expected: "present" })?;
                let to = target.port();
                let from = self.position(*droplet)?;
                if from == to {
                    return Ok(());
                }
                match self.route(from, to, *droplet) {
                    Some(path) => self.transport_with_faults(*droplet, path),
                    None => {
                        // Boxed in (dead electrodes closed every corridor):
                        // the controller abandons the droplet rather than
                        // aborting the whole run.
                        self.droplets.remove(droplet);
                        self.report.droplets_lost += 1;
                        let idx = self.inject(FaultKind::Stranded { at: from }, *droplet)?;
                        self.mark_lost(*droplet, idx)?;
                        Ok(())
                    }
                }
            }
            Instruction::MixSplit { mixer, a, b, out_a, out_b } => {
                let seq = {
                    let ctx = self.fault_ctx()?;
                    let s = ctx.mix_seq;
                    ctx.mix_seq += 1;
                    s
                };
                if let Some(idx) = self.lost_record(*a).or_else(|| self.lost_record(*b)) {
                    // The mix cannot fire. Quarantine a surviving operand so
                    // it cannot contaminate later rendezvous at this port,
                    // and propagate the loss to both outputs.
                    for operand in [*a, *b] {
                        if !self.is_lost(operand) && self.droplets.remove(&operand).is_some() {
                            self.fault_ctx()?.quarantined.push(operand);
                        }
                    }
                    self.mark_lost(*out_a, idx)?;
                    self.mark_lost(*out_b, idx)?;
                    return Ok(());
                }
                self.execute(instruction)?;
                let inherited = self.taint_record(*a).or_else(|| self.taint_record(*b));
                let bad_split =
                    self.fault.as_ref().is_some_and(|ctx| ctx.faults.bad_splits.contains(&seq));
                let idx = if bad_split {
                    Some(self.inject(FaultKind::SplitError { mixer: *mixer }, *out_a)?)
                } else {
                    inherited
                };
                if let Some(idx) = idx {
                    let ctx = self.fault_ctx()?;
                    ctx.tainted.insert(*out_a, idx);
                    ctx.tainted.insert(*out_b, idx);
                }
                Ok(())
            }
            Instruction::Store { droplet, .. }
            | Instruction::Fetch { droplet, .. }
            | Instruction::Discard { droplet, .. } => {
                if self.is_lost(*droplet) {
                    return Ok(());
                }
                self.execute(instruction)
            }
            Instruction::Emit { droplet, .. } => {
                if self.is_lost(*droplet) {
                    return Ok(());
                }
                if let Some(idx) = self.taint_record(*droplet) {
                    // Output-port sensor: the droplet's CF is outside the
                    // tolerated margin — reject it to waste, never emit.
                    self.reject(*droplet, idx)?;
                    return Ok(());
                }
                self.execute(instruction)
            }
            Instruction::CycleMarker { cycle } => {
                self.execute(instruction)?;
                let period =
                    self.fault.as_ref().map(|ctx| ctx.faults.sensor_period).unwrap_or_default();
                if period > 0 && cycle % period == 0 {
                    self.sensor_checkpoint()?;
                }
                Ok(())
            }
        }
    }

    /// Like [`SimState::transport`], but a path crossing a latent dead
    /// electrode strands the droplet there: it moves up to the dead cell,
    /// sticks, and is lost.
    fn transport_with_faults(
        &mut self,
        droplet: DropletId,
        path: Vec<Coord>,
    ) -> Result<(), SimError> {
        let dead_at = self.fault.as_ref().and_then(|ctx| {
            path.iter().enumerate().skip(1).find(|(_, c)| ctx.faults.dead_cells.contains(c))
        });
        match dead_at.map(|(i, _)| i) {
            None => self.transport(droplet, path),
            Some(i) => {
                let cell = path[i];
                self.transport(droplet, path[..=i].to_vec())?;
                self.droplets.remove(&droplet);
                self.report.droplets_lost += 1;
                let idx = self.inject(FaultKind::StuckElectrode { cell }, droplet)?;
                self.mark_lost(droplet, idx)?;
                Ok(())
            }
        }
    }

    /// Records an injected fault and its trace event, returning the
    /// record's index.
    fn inject(&mut self, kind: FaultKind, droplet: DropletId) -> Result<usize, SimError> {
        let cycle = self.report.cycles;
        self.report.faults_injected += 1;
        self.record(crate::TraceEvent::FaultInjected { droplet, kind });
        let ctx = self.fault_ctx()?;
        ctx.records.push(FaultRecord {
            kind,
            droplet,
            injected_cycle: cycle,
            detected_cycle: None,
        });
        Ok(ctx.records.len() - 1)
    }

    fn mark_lost(&mut self, droplet: DropletId, idx: usize) -> Result<(), SimError> {
        self.fault_ctx()?.lost.insert(droplet, idx);
        Ok(())
    }

    fn lost_record(&self, droplet: DropletId) -> Option<usize> {
        self.fault.as_ref().and_then(|ctx| ctx.lost.get(&droplet).copied())
    }

    fn is_lost(&self, droplet: DropletId) -> bool {
        self.lost_record(droplet).is_some()
    }

    fn taint_record(&self, droplet: DropletId) -> Option<usize> {
        self.fault.as_ref().and_then(|ctx| ctx.tainted.get(&droplet).copied())
    }

    /// Marks record `idx` detected at the current cycle (idempotent).
    fn detect(&mut self, idx: usize) -> Result<(), SimError> {
        let cycle = self.report.cycles;
        let ctx = self.fault_ctx()?;
        let fresh = match ctx.records.get_mut(idx) {
            Some(record) if record.detected_cycle.is_none() => {
                record.detected_cycle = Some(cycle);
                true
            }
            Some(_) => false,
            None => {
                return Err(SimError::Internal { invariant: "fault record index in range" });
            }
        };
        if fresh {
            self.report.faults_detected += 1;
        }
        Ok(())
    }

    /// A sensor rejects an erroneous droplet to waste: it is removed from
    /// the chip (and storage), discarded, and its record marked detected.
    fn reject(&mut self, droplet: DropletId, idx: usize) -> Result<(), SimError> {
        self.droplets.remove(&droplet);
        self.storage.retain(|_, d| *d != droplet);
        self.record(crate::TraceEvent::FaultDetected { droplet });
        self.record(crate::TraceEvent::Discarded { droplet });
        self.report.discarded += 1;
        self.mark_lost(droplet, idx)?;
        self.detect(idx)
    }

    /// A checkpoint "sensor" cycle: compares observed droplet state with
    /// the plan. Erroneous droplets still on chip are rejected to waste
    /// (in id order, for determinism) and every still-latent fault record
    /// — a droplet the plan expects but the chip no longer carries — is
    /// marked detected.
    fn sensor_checkpoint(&mut self) -> Result<(), SimError> {
        let Some(ctx) = self.fault.as_ref() else {
            return Ok(());
        };
        let mut bad: Vec<(DropletId, usize)> =
            self.droplets.keys().filter_map(|d| ctx.tainted.get(d).map(|&idx| (*d, idx))).collect();
        bad.sort_unstable_by_key(|(d, _)| d.0);
        for (droplet, idx) in bad {
            self.reject(droplet, idx)?;
        }
        let latent: Vec<(usize, DropletId)> = {
            let ctx = self.fault_ctx()?;
            ctx.records
                .iter()
                .enumerate()
                .filter(|(_, r)| r.detected_cycle.is_none())
                .map(|(idx, r)| (idx, r.droplet))
                .collect()
        };
        for (idx, droplet) in latent {
            self.record(crate::TraceEvent::FaultDetected { droplet });
            self.detect(idx)?;
        }
        Ok(())
    }

    fn route(&self, from: Coord, to: Coord, moving: DropletId) -> Option<Vec<Coord>> {
        // Open grid except other droplets' guard bands; module footprints
        // stay passable because ports live inside them and droplets travel
        // between ports. (Module interiors are shielded, so crossing a
        // footprint corner is harmless in this abstraction.) Electrodes
        // diagnosed dead on the chip are never routed across.
        let mut grid = Grid::new(self.chip.width(), self.chip.height());
        for cell in self.chip.dead_cells() {
            grid.block(cell);
        }
        let mut avoid: HashSet<Coord> = HashSet::new();
        let in_module = |c: Coord| self.chip.modules().iter().any(|m| m.rect().contains(c));
        let in_mixer = |c: Coord| self.chip.mixers().any(|m| m.rect().contains(c));
        for (_, at) in self.parked_guard(moving) {
            if at == to && !in_mixer(to) {
                // The destination cell is taken and it is not a mixer
                // rendezvous: unroutable.
                return None;
            }
            if in_module(at) {
                // Only the occupied cell itself is off-limits (and a mixer
                // rendezvous cell not even that).
                if !(in_mixer(at) && at == to) {
                    avoid.insert(at);
                }
            } else {
                avoid.insert(at);
                for n in at.all_neighbors() {
                    avoid.insert(n);
                }
            }
        }
        if let Some(pins) = self.pins {
            // Under a shared-pin backend a cell whose ghosts would fire
            // inside an unshielded parked droplet's exclusion zone is as
            // good as blocked: steer ad-hoc routes around it so the
            // transport's pin-hazard gate never trips on our own paths.
            let guarded: Vec<Coord> = self
                .parked_guard(moving)
                .into_iter()
                .map(|(_, at)| at)
                .filter(|&at| !in_module(at))
                .collect();
            if !guarded.is_empty() {
                for y in 0..self.chip.height() {
                    for x in 0..self.chip.width() {
                        let c = Coord::new(x, y);
                        if guarded.iter().any(|&at| pins.co_activation_conflict(c, at)) {
                            avoid.insert(c);
                        }
                    }
                }
            }
        }
        shortest_path(&grid, from, to, &avoid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_chip::presets::pcr_chip;
    use dmf_chip::Rect;

    fn ids(chip: &ChipSpec) -> (ModuleId, ModuleId, ModuleId, ModuleId, ModuleId) {
        let r1 = chip.reservoir_for(0).unwrap().id();
        let r7 = chip.reservoir_for(6).unwrap().id();
        let m1 = chip.mixers().next().unwrap().id();
        let w1 = chip.waste_reservoirs().next().unwrap().id();
        let o1 = chip.outputs().next().unwrap().id();
        (r1, r7, m1, w1, o1)
    }

    #[test]
    fn dispense_mix_emit_happy_path() {
        let chip = pcr_chip();
        let (r1, r7, m1, w1, o1) = ids(&chip);
        let mut p = ChipProgram::new();
        p.push(Instruction::CycleMarker { cycle: 1 });
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p.push(Instruction::TransportTo { droplet: DropletId(0), module: m1 });
        p.push(Instruction::Dispense { reservoir: r7, droplet: DropletId(1) });
        p.push(Instruction::TransportTo { droplet: DropletId(1), module: m1 });
        p.push(Instruction::MixSplit {
            mixer: m1,
            a: DropletId(0),
            b: DropletId(1),
            out_a: DropletId(2),
            out_b: DropletId(3),
        });
        p.push(Instruction::TransportTo { droplet: DropletId(2), module: o1 });
        p.push(Instruction::Emit { droplet: DropletId(2), output: o1 });
        p.push(Instruction::TransportTo { droplet: DropletId(3), module: w1 });
        p.push(Instruction::Discard { droplet: DropletId(3), waste: w1 });
        let report = Simulator::new(&chip).run(&p).unwrap();
        assert_eq!(report.dispensed, 2);
        assert_eq!(report.mix_splits, 1);
        assert_eq!(report.emitted, 1);
        assert_eq!(report.discarded, 1);
        assert!(report.transport_actuations > 0);
        assert_eq!(report.cycles, 1);
    }

    #[test]
    fn storage_cells_hold_one_droplet() {
        let chip = pcr_chip();
        let (r1, _, _, w1, _) = ids(&chip);
        let q1 = chip.storage_cells().next().unwrap().id();
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p.push(Instruction::TransportTo { droplet: DropletId(0), module: q1 });
        p.push(Instruction::Store { droplet: DropletId(0), cell: q1 });
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(1) });
        p.push(Instruction::TransportTo { droplet: DropletId(1), module: q1 });
        let err = Simulator::new(&chip).allow_leftovers().run(&p).unwrap_err();
        // The second droplet cannot even approach: the first one is parked
        // on the storage cell it targets.
        assert!(matches!(err, SimError::NoRoute { .. } | SimError::StorageBusy { .. }));

        // Store/fetch round-trip works and the peak is recorded.
        let mut p2 = ChipProgram::new();
        p2.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p2.push(Instruction::TransportTo { droplet: DropletId(0), module: q1 });
        p2.push(Instruction::Store { droplet: DropletId(0), cell: q1 });
        p2.push(Instruction::Fetch { droplet: DropletId(0), cell: q1 });
        p2.push(Instruction::TransportTo { droplet: DropletId(0), module: w1 });
        p2.push(Instruction::Discard { droplet: DropletId(0), waste: w1 });
        let report = Simulator::new(&chip).run(&p2).unwrap();
        assert_eq!(report.storage_peak, 1);
    }

    #[test]
    fn misplaced_droplets_are_rejected() {
        let chip = pcr_chip();
        let (r1, _, m1, _, _) = ids(&chip);
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(1) });
        let err = Simulator::new(&chip).allow_leftovers().run(&p).unwrap_err();
        assert!(matches!(err, SimError::FluidicViolation { .. }));
        let mut p2 = ChipProgram::new();
        p2.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p2.push(Instruction::MixSplit {
            mixer: m1,
            a: DropletId(0),
            b: DropletId(0),
            out_a: DropletId(1),
            out_b: DropletId(2),
        });
        let err2 = Simulator::new(&chip).allow_leftovers().run(&p2).unwrap_err();
        assert!(matches!(err2, SimError::Misplaced { .. }));
    }

    #[test]
    fn leftover_droplets_are_flagged() {
        let chip = pcr_chip();
        let (r1, ..) = ids(&chip);
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        assert!(matches!(
            Simulator::new(&chip).run(&p),
            Err(SimError::LeftoverDroplets { count: 1 })
        ));
        assert!(Simulator::new(&chip).allow_leftovers().run(&p).is_ok());
    }

    #[test]
    fn electrode_heatmap_tracks_wear() {
        let chip = pcr_chip();
        let (r1, _, _, w1, _) = ids(&chip);
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p.push(Instruction::TransportTo { droplet: DropletId(0), module: w1 });
        p.push(Instruction::Discard { droplet: DropletId(0), waste: w1 });
        let report = Simulator::new(&chip).run(&p).unwrap();
        // One actuation per hop plus the dispense; sums must agree.
        let total: u32 = report.electrode_actuations.values().sum();
        assert_eq!(u64::from(total), report.transport_actuations + report.dispensed);
        assert!(report.max_electrode_actuations() >= 1);
        assert!(report.actuated_electrodes() as u64 >= report.transport_actuations);
        assert!(report.hottest_electrode().is_some());
    }

    #[test]
    fn manual_paths_are_validated() {
        let chip = pcr_chip();
        let (r1, ..) = ids(&chip);
        let start = chip.module(r1).port();
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p.push(Instruction::Transport {
            droplet: DropletId(0),
            path: vec![start, Coord::new(start.x + 3, start.y)],
        });
        let err = Simulator::new(&chip).allow_leftovers().run(&p).unwrap_err();
        assert!(matches!(err, SimError::BadPath { .. }));
    }

    #[test]
    fn pinned_run_counts_ghost_wear() {
        use dmf_pins::{ChipBackend, RowColumn};
        let chip = pcr_chip();
        let (r1, _, _, w1, _) = ids(&chip);
        let pins = RowColumn::default().assign_chip(&chip).unwrap();
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p.push(Instruction::TransportTo { droplet: DropletId(0), module: w1 });
        p.push(Instruction::Discard { droplet: DropletId(0), waste: w1 });
        let plain = Simulator::new(&chip).run(&p).unwrap();
        assert_eq!(plain.ghost_actuations, 0);
        let pinned = Simulator::new(&chip).with_pins(&pins).run(&p).unwrap();
        // A lone droplet can never pin-conflict, but every actuation now
        // drags its group mates: the heatmap grows by exactly the ghosts.
        assert!(pinned.ghost_actuations > 0);
        let plain_total: u64 = plain.electrode_actuations.values().map(|&n| u64::from(n)).sum();
        let pinned_total: u64 = pinned.electrode_actuations.values().map(|&n| u64::from(n)).sum();
        assert_eq!(pinned_total, plain_total + pinned.ghost_actuations);
        assert_eq!(pinned.transport_actuations, plain.transport_actuations);
    }

    #[test]
    fn direct_backend_is_byte_identical() {
        use dmf_pins::BackendKind;
        let chip = pcr_chip();
        let (r1, r7, m1, w1, o1) = ids(&chip);
        let direct = BackendKind::DirectAddress.backend().assign_chip(&chip).unwrap();
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p.push(Instruction::TransportTo { droplet: DropletId(0), module: m1 });
        p.push(Instruction::Dispense { reservoir: r7, droplet: DropletId(1) });
        p.push(Instruction::TransportTo { droplet: DropletId(1), module: m1 });
        p.push(Instruction::MixSplit {
            mixer: m1,
            a: DropletId(0),
            b: DropletId(1),
            out_a: DropletId(2),
            out_b: DropletId(3),
        });
        p.push(Instruction::TransportTo { droplet: DropletId(2), module: o1 });
        p.push(Instruction::Emit { droplet: DropletId(2), output: o1 });
        p.push(Instruction::TransportTo { droplet: DropletId(3), module: w1 });
        p.push(Instruction::Discard { droplet: DropletId(3), waste: w1 });
        let plain = Simulator::new(&chip).run(&p).unwrap();
        let pinned = Simulator::new(&chip).with_pins(&direct).run(&p).unwrap();
        assert_eq!(plain, pinned);
        assert_eq!(pinned.ghost_actuations, 0);
    }

    #[test]
    fn ghost_into_parked_droplet_is_a_pin_conflict() {
        // A bare 13x3 chip, pitch-5 row sharing: columns {1,6,11} share a
        // pin per row, so marching a droplet rightward from x=0 ghost-
        // fires (11,1) on its first hop — adjacent to the droplet parked
        // at (12,2). Co-activation hazard despite full fluidic legality.
        use dmf_pins::{ChipBackend, RowColumn};
        let mut chip = ChipSpec::new(13, 3).unwrap();
        let ra = chip
            .add_module("R1", ModuleKind::Reservoir { fluid: 0 }, Rect::new(0, 1, 1, 1))
            .unwrap();
        let rb = chip
            .add_module("R2", ModuleKind::Reservoir { fluid: 1 }, Rect::new(12, 1, 1, 1))
            .unwrap();
        let pins = RowColumn::new(5).unwrap().assign_chip(&chip).unwrap();
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: rb, droplet: DropletId(1) });
        p.push(Instruction::Transport {
            droplet: DropletId(1),
            path: vec![Coord::new(12, 1), Coord::new(12, 2)],
        });
        p.push(Instruction::Dispense { reservoir: ra, droplet: DropletId(0) });
        p.push(Instruction::Transport {
            droplet: DropletId(0),
            path: (0..=6).map(|x| Coord::new(x, 1)).collect(),
        });
        // Fluidically legal: the droplets stay 6 columns apart. The
        // unconstrained simulator accepts the program...
        assert!(Simulator::new(&chip).allow_leftovers().run(&p).is_ok());
        // ...but under shared pins the hop onto (6,1) ghost-fires (11,1)
        // next to the droplet parked at (12,2).
        let err = Simulator::new(&chip).with_pins(&pins).allow_leftovers().run(&p).unwrap_err();
        assert!(matches!(err, SimError::PinConflict { .. }), "got {err:?}");
    }

    #[test]
    fn fluidic_violation_detected_on_open_cells() {
        // Two droplets on a bare chip: moving one straight through the
        // other's guard band must fail.
        let mut chip = ChipSpec::new(9, 3).unwrap();
        let ra = chip
            .add_module("R1", ModuleKind::Reservoir { fluid: 0 }, Rect::new(0, 1, 1, 1))
            .unwrap();
        let rb = chip
            .add_module("R2", ModuleKind::Reservoir { fluid: 1 }, Rect::new(8, 1, 1, 1))
            .unwrap();
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: ra, droplet: DropletId(0) });
        p.push(Instruction::Transport {
            droplet: DropletId(0),
            path: (0..=4).map(|x| Coord::new(x, 1)).collect(),
        });
        p.push(Instruction::Dispense { reservoir: rb, droplet: DropletId(1) });
        p.push(Instruction::Transport {
            droplet: DropletId(1),
            path: (4..=8).rev().map(|x| Coord::new(x, 1)).collect(),
        });
        let err = Simulator::new(&chip).allow_leftovers().run(&p).unwrap_err();
        assert!(matches!(err, SimError::FluidicViolation { .. }));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::TraceEvent;
    use dmf_chip::presets::pcr_chip;

    #[test]
    fn traced_run_logs_every_droplet_lifecycle() {
        let chip = pcr_chip();
        let r1 = chip.reservoir_for(0).unwrap().id();
        let r7 = chip.reservoir_for(6).unwrap().id();
        let m1 = chip.mixers().next().unwrap().id();
        let w1 = chip.waste_reservoirs().next().unwrap().id();
        let o1 = chip.outputs().next().unwrap().id();
        let mut p = ChipProgram::new();
        p.push(Instruction::CycleMarker { cycle: 1 });
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p.push(Instruction::TransportTo { droplet: DropletId(0), module: m1 });
        p.push(Instruction::Dispense { reservoir: r7, droplet: DropletId(1) });
        p.push(Instruction::TransportTo { droplet: DropletId(1), module: m1 });
        p.push(Instruction::MixSplit {
            mixer: m1,
            a: DropletId(0),
            b: DropletId(1),
            out_a: DropletId(2),
            out_b: DropletId(3),
        });
        p.push(Instruction::TransportTo { droplet: DropletId(2), module: o1 });
        p.push(Instruction::Emit { droplet: DropletId(2), output: o1 });
        p.push(Instruction::TransportTo { droplet: DropletId(3), module: w1 });
        p.push(Instruction::Discard { droplet: DropletId(3), waste: w1 });
        let (report, trace) = Simulator::new(&chip).run_traced(&p).unwrap();
        // Untraced run agrees.
        assert_eq!(report, Simulator::new(&chip).run(&p).unwrap());
        // Droplet 0: dispensed, moved, mixed.
        let history = trace.droplet_history(DropletId(0));
        assert!(matches!(history[0].event, TraceEvent::Dispensed { .. }));
        assert!(matches!(history.last().unwrap().event, TraceEvent::Mixed { .. }));
        // Droplet 2: born in the mix, moved, emitted.
        let out = trace.droplet_history(DropletId(2));
        assert!(matches!(out.last().unwrap().event, TraceEvent::Emitted { .. }));
        // Cycle attribution and rendering.
        assert!(trace.events().iter().all(|e| e.cycle == 1));
        assert_eq!(trace.cycle_events(1).len(), trace.len());
        let text = trace.render();
        assert!(text.contains("mixed at"));
        assert!(text.contains("emitted as target"));
        // Moved hops agree with the actuation count.
        let moved_hops: u32 = trace
            .events()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Moved { hops, .. } => Some(hops),
                _ => None,
            })
            .sum();
        assert_eq!(u64::from(moved_hops), report.transport_actuations);
    }
}
