use dmf_chip::Coord;
use std::collections::HashMap;
use std::fmt;

/// Aggregate statistics of one simulated program run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Electrode actuations spent moving droplets (one per hop) — the
    /// reliability metric of the paper's Fig. 5 comparison.
    pub transport_actuations: u64,
    /// Unit droplets dispensed from reservoirs.
    pub dispensed: u64,
    /// (1:1) mix-split operations executed.
    pub mix_splits: u64,
    /// Target droplets emitted at output ports.
    pub emitted: u64,
    /// Droplets sent to waste reservoirs.
    pub discarded: u64,
    /// Peak number of simultaneously occupied storage cells.
    pub storage_peak: usize,
    /// Highest schedule cycle marker seen.
    pub cycles: u32,
    /// Per-electrode actuation counts (transport hops and dispenses).
    ///
    /// Excessive actuation of individual electrodes degrades them and
    /// shortens chip lifetime (Huang et al., ICCAD 2011 — the reliability
    /// concern the paper's electrode-actuation comparison addresses);
    /// [`SimReport::max_electrode_actuations`] is the wear hot-spot.
    pub electrode_actuations: HashMap<Coord, u32>,
    /// Ghost actuations under a pin-constrained backend: electrodes fired
    /// only because they share a control pin with an intentionally
    /// actuated one. Counted into [`SimReport::electrode_actuations`] as
    /// well — shared-pin addressing trades pin count for extra wear, and
    /// this field is the size of that trade. Always 0 under direct
    /// addressing.
    pub ghost_actuations: u64,
    /// Faults injected by the active fault plan (0 outside
    /// [`crate::Simulator::run_faulty`]).
    pub faults_injected: u64,
    /// Fault records detected by sensor checkpoints or the output-port
    /// sensor.
    pub faults_detected: u64,
    /// Droplets physically lost to faults (failed dispenses, stuck or
    /// stranded droplets). Skipped mixes do not lose fluid: their
    /// surviving operand is quarantined, not destroyed.
    pub droplets_lost: u64,
}

impl SimReport {
    /// The most-actuated electrode and its count, if any electrode was
    /// actuated at all.
    pub fn hottest_electrode(&self) -> Option<(Coord, u32)> {
        self.electrode_actuations
            .iter()
            .max_by_key(|&(c, n)| (*n, std::cmp::Reverse((c.x, c.y))))
            .map(|(&c, &n)| (c, n))
    }

    /// Actuation count of the most-actuated electrode (0 if none).
    pub fn max_electrode_actuations(&self) -> u32 {
        self.hottest_electrode().map(|(_, n)| n).unwrap_or(0)
    }

    /// Number of distinct electrodes ever actuated.
    pub fn actuated_electrodes(&self) -> usize {
        self.electrode_actuations.len()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "actuations={} dispensed={} mixes={} emitted={} wasted={} storage_peak={} cycles={}",
            self.transport_actuations,
            self.dispensed,
            self.mix_splits,
            self.emitted,
            self.discarded,
            self.storage_peak,
            self.cycles
        )?;
        if self.faults_injected > 0 || self.faults_detected > 0 {
            write!(
                f,
                " faults={}/{} lost={}",
                self.faults_detected, self.faults_injected, self.droplets_lost
            )?;
        }
        Ok(())
    }
}
