use crate::Schedule;
use dmf_mixgraph::MixGraph;

/// Per-cycle on-chip storage occupancy of a schedule — the generalisation of
/// the paper's `Counting_Storage_Units` (Algorithm 3) to forest DAGs.
///
/// Every mix-split produces two droplets. A droplet consumed by a later
/// vertex waits in a storage unit during the open interval between its
/// production cycle and its consumption cycle; droplets consumed in the very
/// next cycle are handed over directly. Waste droplets move to the waste
/// reservoir and emitted targets leave the chip, so neither occupies
/// storage. The peak occupancy is the number of storage units `q` the
/// schedule requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageProfile {
    /// `occupancy[t - 1]` is the number of stored droplets during cycle `t`.
    pub occupancy: Vec<u32>,
    /// Peak occupancy — the paper's `q`.
    pub peak: usize,
}

impl StorageProfile {
    pub(crate) fn compute(schedule: &Schedule, graph: &MixGraph) -> StorageProfile {
        let mut occupancy = vec![0u32; schedule.makespan() as usize];
        for (id, _) in graph.iter() {
            let produced = schedule.cycle_of(id);
            for &consumer in graph.consumers(id) {
                let consumed = schedule.cycle_of(consumer);
                // Occupies cycles produced+1 ..= consumed-1 (Algorithm 3).
                for t in (produced + 1)..consumed {
                    occupancy[t as usize - 1] += 1;
                }
            }
        }
        let peak = occupancy.iter().copied().max().unwrap_or(0) as usize;
        StorageProfile { occupancy, peak }
    }
}

#[cfg(test)]
mod tests {
    use crate::Schedule;
    use dmf_mixgraph::{GraphBuilder, NodeId, Operand};
    use dmf_ratio::{FluidId, TargetRatio};

    /// Chain of three mixes scheduled with gaps forces storage.
    #[test]
    fn gaps_between_producer_and_consumer_occupy_storage() {
        // x1 -> m0; (m0, x1) -> m1 (root): 7:1 over two fluids? Build 3:1.
        let target = TargetRatio::new(vec![3, 1]).unwrap();
        let mut b = GraphBuilder::new(2);
        let inner = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let root = b.mix(Operand::Input(FluidId(0)), Operand::Droplet(inner)).unwrap();
        b.finish_tree(root);
        let g = b.finish(&target).unwrap();

        // Schedule with a two-cycle gap: inner at 1, root at 4.
        let s = Schedule::from_assignments(1, vec![1, 4], vec![0, 0]);
        s.validate(&g).unwrap();
        let profile = s.storage(&g);
        assert_eq!(profile.occupancy, vec![0, 1, 1, 0]);
        assert_eq!(profile.peak, 1);

        // Back-to-back execution needs no storage.
        let tight = Schedule::from_assignments(1, vec![1, 2], vec![0, 0]);
        assert_eq!(tight.storage(&g).peak, 0);
    }

    #[test]
    fn both_consumers_of_a_droplet_pair_are_counted() {
        // inner feeds two consumers at different distances.
        let target = TargetRatio::new(vec![3, 1]).unwrap();
        let mut b = GraphBuilder::new(2);
        let inner = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let r1 = b.mix(Operand::Input(FluidId(0)), Operand::Droplet(inner)).unwrap();
        b.finish_tree(r1);
        let r2 = b.mix(Operand::Input(FluidId(0)), Operand::Droplet(inner)).unwrap();
        b.finish_tree(r2);
        let g = b.finish(&target).unwrap();

        // inner at 1, r1 at 3, r2 at 4: droplet A waits cycle 2,
        // droplet B waits cycles 2 and 3 => peak 2 at cycle 2.
        let s = Schedule::from_assignments(1, vec![1, 3, 4], vec![0, 0, 0]);
        s.validate(&g).unwrap();
        let profile = s.storage(&g);
        assert_eq!(profile.occupancy, vec![0, 2, 1, 0]);
        assert_eq!(profile.peak, 2);
    }

    #[test]
    fn validate_catches_bad_schedules() {
        let target = TargetRatio::new(vec![3, 1]).unwrap();
        let mut b = GraphBuilder::new(2);
        let inner = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let root = b.mix(Operand::Input(FluidId(0)), Operand::Droplet(inner)).unwrap();
        b.finish_tree(root);
        let g = b.finish(&target).unwrap();

        // Precedence violation: root before inner.
        let s = Schedule::from_assignments(1, vec![2, 1], vec![0, 0]);
        assert!(matches!(
            s.validate(&g),
            Err(crate::SchedError::PrecedenceViolated { node, .. }) if node == NodeId::new(1)
        ));

        // Mixer conflict: both on M1 in cycle 1 (also precedence-broken, but
        // use independent nodes to isolate the conflict).
        let mut b2 = GraphBuilder::new(2);
        let a = b2.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        b2.finish_tree(a);
        let c = b2.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        b2.finish_tree(c);
        let g2 = b2.finish(&TargetRatio::new(vec![1, 1]).unwrap()).unwrap();
        let s2 = Schedule::from_assignments(2, vec![1, 1], vec![0, 0]);
        assert!(matches!(s2.validate(&g2), Err(crate::SchedError::MixerConflict { .. })));
    }
}
