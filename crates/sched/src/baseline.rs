use crate::{oms_schedule, SchedError};
use dmf_mixgraph::MixGraph;

/// Cost of meeting a demand by repeatedly re-running a base mixing tree —
/// the paper's baseline approaches `RMM`, `RRMA` and `RMTCS` (§4.2).
///
/// A base tree emits two target droplets per pass, so a demand `D` needs
/// `⌈D/2⌉` passes; every per-pass figure (`tc`, waste, inputs) scales by the
/// pass count, while the storage requirement stays at the per-pass value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepeatedBaseline {
    /// Number of passes `⌈D/2⌉`.
    pub passes: u64,
    /// Completion time of one pass under OMS with the given mixers.
    pub cycles_per_pass: u32,
    /// Total completion time `Tr = passes * cycles_per_pass`.
    pub total_cycles: u64,
    /// Storage units needed (per pass; passes do not overlap).
    pub storage: usize,
    /// Total waste droplets `Wr`.
    pub total_waste: u64,
    /// Total input droplets `Ir`.
    pub total_inputs: u64,
    /// Per-fluid input droplets over all passes.
    pub inputs: Vec<u64>,
}

/// Evaluates the repeated baseline for `demand` target droplets of the base
/// tree `base`, scheduled by OMS with `mixers` on-chip mixers.
///
/// The paper schedules every baseline with the `Mlb` of the corresponding
/// MM tree; pass that value as `mixers` to reproduce its tables.
///
/// # Errors
///
/// Returns [`SchedError::NoMixers`] when `mixers == 0`.
///
/// # Examples
///
/// ```
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
/// use dmf_sched::repeated_baseline;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let tree = MinMix.build_graph(&target)?;
/// let rmm = repeated_baseline(&tree, 20, 3)?;
/// assert_eq!(rmm.passes, 10);
/// assert_eq!(rmm.total_cycles, 40); // 10 passes x 4 cycles
/// assert_eq!(rmm.total_waste, 60);  // 10 x 6 waste droplets
/// # Ok(())
/// # }
/// ```
pub fn repeated_baseline(
    base: &MixGraph,
    demand: u64,
    mixers: usize,
) -> Result<RepeatedBaseline, SchedError> {
    let schedule = oms_schedule(base, mixers)?;
    let stats = base.stats();
    let passes = demand.div_ceil(2);
    let storage = schedule.storage(base).peak;
    Ok(RepeatedBaseline {
        passes,
        cycles_per_pass: schedule.makespan(),
        total_cycles: passes * schedule.makespan() as u64,
        storage,
        total_waste: passes * stats.waste as u64,
        total_inputs: passes * stats.input_total,
        inputs: stats.inputs.iter().map(|&v| v * passes).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_mixalgo::{MinMix, MixingAlgorithm, Rma};
    use dmf_ratio::TargetRatio;

    #[test]
    fn scales_linearly_with_demand() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let tree = MinMix.build_graph(&target).unwrap();
        let two = repeated_baseline(&tree, 2, 3).unwrap();
        let thirty_two = repeated_baseline(&tree, 32, 3).unwrap();
        assert_eq!(thirty_two.passes, 16);
        assert_eq!(thirty_two.total_cycles, 16 * two.total_cycles);
        assert_eq!(thirty_two.total_inputs, 16 * two.total_inputs);
        assert_eq!(thirty_two.storage, two.storage);
    }

    #[test]
    fn odd_demand_rounds_up() {
        let target = TargetRatio::new(vec![3, 5]).unwrap();
        let tree = MinMix.build_graph(&target).unwrap();
        assert_eq!(repeated_baseline(&tree, 7, 2).unwrap().passes, 4);
    }

    #[test]
    fn rma_baseline_wastes_more_than_mm() {
        // Ex.4 forces RMA to fragment components (on the d=4 PCR mix RMA
        // and MM coincide).
        let target = TargetRatio::new(vec![9, 17, 26, 9, 195]).unwrap();
        let mm = MinMix.build_graph(&target).unwrap();
        let rma = Rma.build_graph(&target).unwrap();
        let b_mm = repeated_baseline(&mm, 32, 3).unwrap();
        let b_rma = repeated_baseline(&rma, 32, 3).unwrap();
        assert!(b_rma.total_waste > b_mm.total_waste);
        assert!(b_rma.total_inputs > b_mm.total_inputs);
    }
}
