//! Scheduler trait objects and the name-keyed scheduler registry — the
//! open extension point behind the closed [`SchedulerKind`] enum.
//!
//! Mirrors `dmf_mixalgo`'s algorithm registry: a [`SchedulerId`] is a
//! `Copy` handle carrying a stable wire key, a display label and the
//! scheduler object; dispatch through an id is a plain vtable call, and
//! the [`SchedulerRegistry`] is only consulted for name resolution and
//! listing.

use crate::{mms_schedule, srs_schedule, Schedule, SchedulerKind};
use dmf_mixgraph::MixGraph;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A forest scheduler as a trait object: maps a mixing forest onto a mixer
/// budget.
///
/// [`MmsScheduler`] and [`SrsScheduler`] wrap the paper's two procedures;
/// new schedulers implement this trait and register via
/// [`SchedulerRegistry::register`].
pub trait Scheduler {
    /// Short identifier used in reports ("MMS", "SRS", …).
    fn name(&self) -> &'static str;

    /// Schedules `graph` onto `mixers` concurrent mixers.
    ///
    /// # Errors
    ///
    /// Implementation-specific; the provided schedulers fail on graphs
    /// with cyclic precedence or a zero mixer budget.
    fn schedule(&self, graph: &MixGraph, mixers: usize) -> Result<Schedule, crate::SchedError>;
}

/// [`mms_schedule`] (Algorithm 1) as a [`Scheduler`] object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmsScheduler;

impl Scheduler for MmsScheduler {
    fn name(&self) -> &'static str {
        "MMS"
    }

    fn schedule(&self, graph: &MixGraph, mixers: usize) -> Result<Schedule, crate::SchedError> {
        mms_schedule(graph, mixers)
    }
}

/// [`srs_schedule`] (Algorithm 2) as a [`Scheduler`] object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SrsScheduler;

impl Scheduler for SrsScheduler {
    fn name(&self) -> &'static str {
        "SRS"
    }

    fn schedule(&self, graph: &MixGraph, mixers: usize) -> Result<Schedule, crate::SchedError> {
        srs_schedule(graph, mixers)
    }
}

/// A registered scheduler: stable wire key, display label and the
/// scheduler object. Equality and hashing use the key only (the registry
/// enforces uniqueness), keeping ids process-stable for the engine's plan
/// cache.
#[derive(Clone, Copy)]
pub struct SchedulerId {
    key: &'static str,
    label: &'static str,
    scheduler: &'static (dyn Scheduler + Send + Sync),
}

impl SchedulerId {
    /// MMS (`"mms"`).
    pub const MMS: SchedulerId = SchedulerId::new("mms", "MMS", &MmsScheduler);
    /// SRS (`"srs"`).
    pub const SRS: SchedulerId = SchedulerId::new("srs", "SRS", &SrsScheduler);

    /// Creates an id; `key` is the wire name (`--scheduler KEY`).
    pub const fn new(
        key: &'static str,
        label: &'static str,
        scheduler: &'static (dyn Scheduler + Send + Sync),
    ) -> Self {
        SchedulerId { key, label, scheduler }
    }

    /// The stable wire key (`"mms"`, `"srs"`, …).
    pub fn key(self) -> &'static str {
        self.key
    }

    /// The display label (`"MMS"`, `"SRS"`, …).
    pub fn label(self) -> &'static str {
        self.label
    }

    /// The scheduler object behind the id.
    pub fn scheduler(self) -> &'static dyn Scheduler {
        self.scheduler
    }

    /// Runs the scheduler (see [`Scheduler::schedule`]).
    ///
    /// # Errors
    ///
    /// Propagates the scheduler's failure.
    pub fn run(self, graph: &MixGraph, mixers: usize) -> Result<Schedule, crate::SchedError> {
        self.scheduler.schedule(graph, mixers)
    }
}

impl PartialEq for SchedulerId {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for SchedulerId {}

impl Hash for SchedulerId {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key.hash(state);
    }
}

impl fmt::Debug for SchedulerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SchedulerId").field(&self.key).finish()
    }
}

impl fmt::Display for SchedulerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label)
    }
}

impl From<SchedulerKind> for SchedulerId {
    fn from(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Mms => SchedulerId::MMS,
            SchedulerKind::Srs => SchedulerId::SRS,
        }
    }
}

impl PartialEq<SchedulerKind> for SchedulerId {
    fn eq(&self, other: &SchedulerKind) -> bool {
        *self == SchedulerId::from(*other)
    }
}

impl PartialEq<SchedulerId> for SchedulerKind {
    fn eq(&self, other: &SchedulerId) -> bool {
        SchedulerId::from(*self) == *other
    }
}

/// One registry row: the id, a one-line description and lookup aliases.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerEntry {
    /// The scheduler id.
    pub id: SchedulerId,
    /// One-line description shown by `--list-schedulers`.
    pub description: &'static str,
    /// Extra accepted names.
    pub aliases: &'static [&'static str],
}

/// The name `name` did not resolve to any registered scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSchedulerError {
    /// The name that failed to resolve.
    pub name: String,
    /// The keys currently registered, in registration order.
    pub known: Vec<&'static str>,
}

impl fmt::Display for UnknownSchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown scheduler {:?} (registered: {})", self.name, self.known.join(", "))
    }
}

impl std::error::Error for UnknownSchedulerError {}

/// A scheduler with a clashing key, label or alias is already registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateSchedulerError {
    /// The clashing name.
    pub key: String,
}

impl fmt::Display for DuplicateSchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scheduler {:?} is already registered", self.key)
    }
}

impl std::error::Error for DuplicateSchedulerError {}

/// The process-wide scheduler registry, seeded with MMS and SRS.
pub struct SchedulerRegistry;

static REGISTRY: OnceLock<RwLock<Vec<SchedulerEntry>>> = OnceLock::new();

fn store() -> &'static RwLock<Vec<SchedulerEntry>> {
    REGISTRY.get_or_init(|| {
        RwLock::new(vec![
            SchedulerEntry {
                id: SchedulerId::MMS,
                description: "M_Mixers_Schedule (Algorithm 1): level-synchronous FIFO \
                              forest scheduling, latency-oriented",
                aliases: &[],
            },
            SchedulerEntry {
                id: SchedulerId::SRS,
                description: "Storage_Reduced_Scheduling (Algorithm 2): defers \
                              reservoir-fed mixes to cut on-chip storage",
                aliases: &[],
            },
        ])
    })
}

fn read() -> RwLockReadGuard<'static, Vec<SchedulerEntry>> {
    store().read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write() -> RwLockWriteGuard<'static, Vec<SchedulerEntry>> {
    store().write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SchedulerRegistry {
    /// All registered schedulers, in registration order (MMS, SRS first).
    pub fn entries() -> Vec<SchedulerEntry> {
        read().clone()
    }

    /// Resolves `name` against keys, labels and aliases,
    /// case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSchedulerError`] (listing the registered keys) when
    /// nothing matches.
    pub fn resolve(name: &str) -> Result<SchedulerId, UnknownSchedulerError> {
        let entries = read();
        for entry in entries.iter() {
            if entry.id.key.eq_ignore_ascii_case(name)
                || entry.id.label.eq_ignore_ascii_case(name)
                || entry.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
            {
                return Ok(entry.id);
            }
        }
        Err(UnknownSchedulerError {
            name: name.to_owned(),
            known: entries.iter().map(|e| e.id.key).collect(),
        })
    }

    /// Registers a new scheduler; names must not clash case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateSchedulerError`] on a name clash; the registry is
    /// left unchanged.
    pub fn register(entry: SchedulerEntry) -> Result<(), DuplicateSchedulerError> {
        let mut entries = write();
        let mut new_names = vec![entry.id.key, entry.id.label];
        new_names.extend(entry.aliases);
        for existing in entries.iter() {
            let mut names = vec![existing.id.key, existing.id.label];
            names.extend(existing.aliases);
            for name in &names {
                if new_names.iter().any(|n| n.eq_ignore_ascii_case(name)) {
                    return Err(DuplicateSchedulerError { key: (*name).to_owned() });
                }
            }
        }
        entries.push(entry);
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dmf_ratio::TargetRatio;

    #[test]
    fn both_paper_schedulers_resolve_and_round_trip_the_enum() {
        assert_eq!(SchedulerRegistry::resolve("mms").unwrap(), SchedulerId::MMS);
        assert_eq!(SchedulerRegistry::resolve("SRS").unwrap(), SchedulerId::SRS);
        for kind in SchedulerKind::ALL {
            let id = SchedulerId::from(kind);
            assert_eq!(id, kind);
            assert_eq!(kind, id);
            assert_eq!(id.label(), kind.name());
        }
    }

    #[test]
    fn unknown_scheduler_lists_known_keys() {
        let err = SchedulerRegistry::resolve("hlf").unwrap_err();
        assert!(err.known.contains(&"mms") && err.known.contains(&"srs"));
    }

    #[test]
    fn id_dispatch_equals_direct_function_calls() {
        use dmf_mixalgo::{MinMix, MixingAlgorithm};
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let graph = MinMix.build_graph(&target).unwrap();
        let direct = srs_schedule(&graph, 3).unwrap();
        let via_id = SchedulerId::SRS.run(&graph, 3).unwrap();
        assert_eq!(direct.makespan(), via_id.makespan());
        assert_eq!(direct.storage(&graph).peak, via_id.storage(&graph).peak);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let clash = SchedulerEntry {
            id: SchedulerId::new("MMS", "MMS2", &MmsScheduler),
            description: "clashes with mms",
            aliases: &[],
        };
        assert!(SchedulerRegistry::register(clash).is_err());
    }
}
