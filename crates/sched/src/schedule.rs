use crate::{SchedError, StorageProfile};
use dmf_mixgraph::{MixGraph, NodeId, Operand};

/// Index of an on-chip mixer module (`M1` is `MixerId(0)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MixerId(pub usize);

impl std::fmt::Display for MixerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M{}", self.0 + 1)
    }
}

/// A complete assignment of time-cycles and mixers to every mix-split vertex
/// of a mixing graph.
///
/// Cycles are 1-based, matching the paper's Gantt chart (Fig. 4). Produced
/// by [`crate::oms_schedule`], [`crate::mms_schedule`] or
/// [`crate::srs_schedule`]; consumers should call [`Schedule::validate`]
/// before trusting externally supplied schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    pub(crate) mixers: usize,
    pub(crate) node_cycle: Vec<u32>,
    pub(crate) node_mixer: Vec<u32>,
    pub(crate) makespan: u32,
}

impl Schedule {
    pub(crate) fn from_assignments(
        mixers: usize,
        node_cycle: Vec<u32>,
        node_mixer: Vec<u32>,
    ) -> Self {
        let makespan = node_cycle.iter().copied().max().unwrap_or(0);
        Schedule { mixers, node_cycle, node_mixer, makespan }
    }

    /// Builds a schedule from raw per-node cycle and mixer assignments
    /// (`node_cycle[i]` / `node_mixer[i]` belong to the node with arena
    /// index `i`; cycles are 1-based).
    ///
    /// No validation is performed — this is the entry point for externally
    /// supplied schedules and for tests that need deliberately corrupt
    /// assignments (e.g. the `dmf-check` mutation suite). Run
    /// [`Schedule::validate`] or `dmf-check`'s `check_schedule` before
    /// trusting the result.
    pub fn from_parts(mixers: usize, node_cycle: Vec<u32>, node_mixer: Vec<u32>) -> Self {
        Schedule::from_assignments(mixers, node_cycle, node_mixer)
    }

    /// Raw per-node assignments `(cycle, mixer)` in arena order — the
    /// inverse of [`Schedule::from_parts`].
    pub fn assignments(&self) -> Vec<(u32, u32)> {
        self.node_cycle.iter().copied().zip(self.node_mixer.iter().copied()).collect()
    }

    /// Number of mixers the schedule was computed for (`Mc`).
    pub fn mixer_count(&self) -> usize {
        self.mixers
    }

    /// Completion time `Tc` in time-cycles.
    pub fn makespan(&self) -> u32 {
        self.makespan
    }

    /// Number of scheduled vertices.
    pub fn len(&self) -> usize {
        self.node_cycle.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.node_cycle.is_empty()
    }

    /// The 1-based cycle in which vertex `id` executes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the scheduled graph.
    pub fn cycle_of(&self, id: NodeId) -> u32 {
        self.node_cycle[id.index()]
    }

    /// The mixer executing vertex `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the scheduled graph.
    pub fn mixer_of(&self, id: NodeId) -> MixerId {
        MixerId(self.node_mixer[id.index()] as usize)
    }

    /// The vertices executed in `cycle`, ordered by mixer index.
    pub fn cycle_contents(&self, cycle: u32) -> Vec<(MixerId, NodeId)> {
        let mut v: Vec<(MixerId, NodeId)> = self
            .node_cycle
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == cycle)
            .map(|(i, _)| (MixerId(self.node_mixer[i] as usize), NodeId::new(i as u32)))
            .collect();
        v.sort();
        v
    }

    /// Cycles at which target droplets are emitted (one entry per component
    /// tree, in ascending order) — the droplet *emission sequence* of the
    /// streaming engine.
    pub fn emission_cycles(&self, graph: &MixGraph) -> Vec<u32> {
        let mut cycles: Vec<u32> =
            graph.roots().iter().map(|&r| self.node_cycle[r.index()]).collect();
        cycles.sort_unstable();
        cycles
    }

    /// Gaps between consecutive target emissions, in cycles — the streaming
    /// *cadence*. A demand-driven engine wants these small and steady; the
    /// repeated baseline emits in bursts of one pass-length each.
    pub fn emission_intervals(&self, graph: &MixGraph) -> Vec<u32> {
        let cycles = self.emission_cycles(graph);
        cycles.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Cycle of the first emitted target pair (the engine's start-up
    /// latency), or 0 for an empty schedule.
    pub fn first_emission(&self, graph: &MixGraph) -> u32 {
        self.emission_cycles(graph).first().copied().unwrap_or(0)
    }

    /// Checks the schedule against `graph`: complete coverage, precedence,
    /// mixer capacity and conflict-freedom.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule as a [`SchedError`].
    pub fn validate(&self, graph: &MixGraph) -> Result<(), SchedError> {
        if self.node_cycle.len() != graph.node_count() {
            return Err(SchedError::SizeMismatch {
                scheduled: self.node_cycle.len(),
                graph: graph.node_count(),
            });
        }
        let mut per_cycle: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for (id, node) in graph.iter() {
            let cycle = self.node_cycle[id.index()];
            if cycle == 0 {
                return Err(SchedError::Unscheduled { node: id });
            }
            for op in node.operands() {
                if let Operand::Droplet(src) = op {
                    if self.node_cycle[src.index()] >= cycle {
                        return Err(SchedError::PrecedenceViolated { node: id, operand: src });
                    }
                }
            }
            per_cycle.entry(cycle).or_default().push(self.node_mixer[id.index()]);
        }
        for (&cycle, mixers) in &per_cycle {
            if mixers.len() > self.mixers {
                return Err(SchedError::MixerOverSubscribed { cycle });
            }
            let mut seen = vec![false; self.mixers];
            for &m in mixers {
                let m = m as usize;
                if m >= self.mixers || seen[m] {
                    return Err(SchedError::MixerConflict { cycle, mixer: m });
                }
                seen[m] = true;
            }
        }
        Ok(())
    }

    /// On-chip storage demand of this schedule (generalised Algorithm 3).
    pub fn storage(&self, graph: &MixGraph) -> StorageProfile {
        let _span = dmf_obs::span!("sched_storage");
        StorageProfile::compute(self, graph)
    }
}

#[cfg(test)]
mod tests {
    use crate::srs_schedule;
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::{MinMix, MixingAlgorithm};
    use dmf_ratio::TargetRatio;

    #[test]
    fn emission_metrics_cover_every_tree() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = MinMix.build_template(&target).unwrap();
        let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees).unwrap();
        let schedule = srs_schedule(&forest, 3).unwrap();
        let cycles = schedule.emission_cycles(&forest);
        assert_eq!(cycles.len(), forest.tree_count());
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cycles.last().unwrap(), schedule.makespan());
        let intervals = schedule.emission_intervals(&forest);
        assert_eq!(intervals.len(), cycles.len() - 1);
        assert_eq!(
            schedule.first_emission(&forest) + intervals.iter().sum::<u32>(),
            schedule.makespan()
        );
    }

    #[test]
    fn cycle_contents_round_trips_assignments() {
        let target = TargetRatio::new(vec![3, 5]).unwrap();
        let tree = MinMix.build_graph(&target).unwrap();
        let schedule = crate::oms_schedule(&tree, 2).unwrap();
        let mut seen = 0;
        for t in 1..=schedule.makespan() {
            for (mixer, node) in schedule.cycle_contents(t) {
                assert_eq!(schedule.cycle_of(node), t);
                assert_eq!(schedule.mixer_of(node), mixer);
                seen += 1;
            }
        }
        assert_eq!(seen, tree.node_count());
    }
}
