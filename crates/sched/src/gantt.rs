//! Text rendering of schedules as modified Gantt charts (paper Fig. 4):
//! one row per mixer, one column per time-cycle, plus a storage-occupancy
//! row and the target-droplet emission sequence.

use crate::Schedule;
use dmf_mixgraph::MixGraph;
use std::fmt::Write as _;

impl Schedule {
    /// Renders the schedule as a fixed-width text Gantt chart.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmf_forest::{build_forest, ReusePolicy};
    /// use dmf_mixalgo::{MinMix, MixingAlgorithm};
    /// use dmf_ratio::TargetRatio;
    /// use dmf_sched::srs_schedule;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
    /// let template = MinMix.build_template(&target)?;
    /// let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees)?;
    /// let chart = srs_schedule(&forest, 3)?.gantt(&forest);
    /// assert!(chart.contains("M1"));
    /// assert!(chart.contains("storage"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn gantt(&self, graph: &MixGraph) -> String {
        let labels = graph.labels();
        let tc = self.makespan();
        let col = labels.iter().map(String::len).max().unwrap_or(4).max(4);
        let mut grid = vec![vec![String::new(); tc as usize]; self.mixer_count()];
        for (id, _) in graph.iter() {
            let t = self.cycle_of(id) as usize;
            let m = self.mixer_of(id).0;
            grid[m][t - 1] = labels[id.index()].clone();
        }
        let mut out = String::new();
        let _ = write!(out, "{:>8} |", "t");
        for t in 1..=tc {
            let _ = write!(out, " {:>width$}", t, width = col);
        }
        out.push('\n');
        let dash_len = 9 + (col + 1) * tc as usize;
        out.push_str(&"-".repeat(dash_len));
        out.push('\n');
        for (m, row) in grid.iter().enumerate() {
            let _ = write!(out, "{:>8} |", format!("M{}", m + 1));
            for cell in row {
                let _ = write!(out, " {:>width$}", cell, width = col);
            }
            out.push('\n');
        }
        let storage = self.storage(graph);
        let _ = write!(out, "{:>8} |", "storage");
        for occ in &storage.occupancy {
            let _ = write!(out, " {:>width$}", occ, width = col);
        }
        out.push('\n');
        let emission = self.emission_cycles(graph);
        let _ = writeln!(
            out,
            "Tc = {} cycles, q = {}, targets emitted at cycles {:?}",
            tc, storage.peak, emission
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::srs_schedule;
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::{MinMix, MixingAlgorithm};
    use dmf_ratio::TargetRatio;

    #[test]
    fn gantt_contains_all_labels_once() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = MinMix.build_template(&target).unwrap();
        let forest = build_forest(&template, &target, 8, ReusePolicy::AcrossTrees).unwrap();
        let s = srs_schedule(&forest, 3).unwrap();
        let chart = s.gantt(&forest);
        for label in forest.labels() {
            assert!(chart.contains(&label), "missing {label}");
        }
        assert!(chart.contains("Tc ="));
    }
}
