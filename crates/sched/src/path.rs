use crate::{SchedError, Schedule};
use dmf_mixgraph::{MixGraph, NodeId, Operand};

/// Path scheduling of a mixing graph, after Grissom & Brisk (DAC 2012) —
/// the storage-lean alternative scheduler the paper cites for mapping
/// mixing trees onto biochips (§2.2).
///
/// Vertices are prioritised by depth-first completion order: the scheduler
/// finishes one root-to-leaf path before widening, the mixing-tree
/// analogue of register-lean Sethi–Ullman expression evaluation. Droplets
/// therefore flow producer-to-consumer with minimal dwell time, at the
/// cost of a longer makespan than [`crate::mms_schedule`] when many mixers
/// are available.
///
/// # Errors
///
/// Returns [`SchedError::NoMixers`] when `mixers == 0`.
///
/// # Examples
///
/// ```
/// use dmf_forest::{build_forest, ReusePolicy};
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
/// use dmf_sched::path_schedule;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let template = MinMix.build_template(&target)?;
/// let forest = build_forest(&template, &target, 16, ReusePolicy::AcrossTrees)?;
/// let schedule = path_schedule(&forest, 3)?;
/// schedule.validate(&forest)?;
/// # Ok(())
/// # }
/// ```
pub fn path_schedule(graph: &MixGraph, mixers: usize) -> Result<Schedule, SchedError> {
    if mixers == 0 {
        return Err(SchedError::NoMixers);
    }
    let n = graph.node_count();
    // Depth-first completion order over every component tree: children
    // (subtree producers) complete immediately before their parent.
    let mut priority = vec![0u32; n];
    let mut next_rank = 0u32;
    let mut stack: Vec<(NodeId, bool)> = Vec::new();
    for &root in graph.roots() {
        stack.push((root, false));
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                priority[id.index()] = next_rank;
                next_rank += 1;
                continue;
            }
            stack.push((id, true));
            for op in graph.node(id).operands() {
                if let Operand::Droplet(src) = op {
                    // Only descend tree edges; reuse edges point at vertices
                    // owned by (and ranked with) an earlier tree.
                    if graph.node(src).tree() == graph.node(id).tree() {
                        stack.push((src, false));
                    }
                }
            }
        }
    }
    // List-schedule by DFS rank.
    let mut deps = vec![0usize; n];
    for (id, node) in graph.iter() {
        deps[id.index()] =
            node.operands().iter().filter(|op| matches!(op, Operand::Droplet(_))).count();
    }
    let mut node_cycle = vec![0u32; n];
    let mut node_mixer = vec![0u32; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| deps[i] == 0).collect();
    let mut scheduled = 0usize;
    let mut t = 1u32;
    while scheduled < n {
        ready.sort_by_key(|&i| (priority[i], i));
        let take = ready.len().min(mixers);
        let batch: Vec<usize> = ready.drain(..take).collect();
        for (mixer, &i) in batch.iter().enumerate() {
            node_cycle[i] = t;
            node_mixer[i] = mixer as u32;
            scheduled += 1;
            for &c in graph.consumers(NodeId::new(i as u32)) {
                deps[c.index()] -= 1;
                if deps[c.index()] == 0 {
                    ready.push(c.index());
                }
            }
        }
        t += 1;
    }
    Ok(Schedule::from_assignments(mixers, node_cycle, node_mixer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mms_schedule;
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::{MinMix, MixingAlgorithm};
    use dmf_ratio::TargetRatio;

    fn pcr_forest(demand: u64) -> MixGraph {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = MinMix.build_template(&target).unwrap();
        build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap()
    }

    #[test]
    fn schedules_are_valid() {
        for demand in [2u64, 8, 20, 32] {
            let g = pcr_forest(demand);
            for m in 1..=4 {
                let s = path_schedule(&g, m).unwrap();
                s.validate(&g).unwrap();
            }
        }
    }

    #[test]
    fn single_mixer_needs_minimal_storage() {
        // With one mixer, depth-first order keeps at most a handful of
        // droplets waiting — never more than the tree depth.
        let g = pcr_forest(16);
        let path = path_schedule(&g, 1).unwrap();
        let mms = mms_schedule(&g, 1).unwrap();
        assert!(
            path.storage(&g).peak <= mms.storage(&g).peak,
            "path {} vs mms {}",
            path.storage(&g).peak,
            mms.storage(&g).peak
        );
    }

    #[test]
    fn rejects_zero_mixers() {
        let g = pcr_forest(4);
        assert!(matches!(path_schedule(&g, 0), Err(SchedError::NoMixers)));
    }

    #[test]
    fn dfs_priority_finishes_paths_contiguously() {
        // On a single tree with one mixer, a parent executes right after
        // its second child's subtree completes.
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let tree = MinMix.build_graph(&target).unwrap();
        let s = path_schedule(&tree, 1).unwrap();
        s.validate(&tree).unwrap();
        assert_eq!(s.makespan() as usize, tree.node_count());
    }
}
