use crate::{SchedError, Schedule};
use dmf_mixgraph::{MixGraph, NodeId, Operand};
use dmf_rng::{Rng, SeedableRng, SliceRandom, StdRng};

/// Configuration of the genetic-algorithm scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene swap-mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Weight of storage in the fitness (makespan counts 1 per cycle,
    /// storage counts `storage_weight` per unit of peak occupancy).
    pub storage_weight: f64,
    /// PRNG seed; runs are deterministic per seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 32,
            generations: 60,
            mutation_rate: 0.08,
            tournament: 3,
            storage_weight: 0.5,
            seed: 0x6A5C_4ED0,
        }
    }
}

/// Genetic-algorithm scheduling of a mixing graph, in the spirit of the
/// GA-based architectural synthesis of Su & Chakrabarty (ACM JETC 2008) —
/// one of the schedulers the paper lists as applicable to mixing trees
/// (§2.2).
///
/// A chromosome is a priority permutation of the vertices; decoding is
/// plain list scheduling (each cycle runs the `Mc` highest-priority ready
/// vertices), so every chromosome yields a *valid* schedule and evolution
/// only ever improves the `makespan + w·storage` fitness. Order crossover
/// and swap mutation preserve permutations.
///
/// Slower than [`crate::mms_schedule`]/[`crate::srs_schedule`] but able to
/// trade completion time against storage through
/// [`GaConfig::storage_weight`].
///
/// # Errors
///
/// Returns [`SchedError::NoMixers`] when `mixers == 0`.
///
/// # Examples
///
/// ```
/// use dmf_forest::{build_forest, ReusePolicy};
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
/// use dmf_sched::{ga_schedule, GaConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let template = MinMix.build_template(&target)?;
/// let forest = build_forest(&template, &target, 8, ReusePolicy::AcrossTrees)?;
/// let schedule = ga_schedule(&forest, 3, &GaConfig::default())?;
/// schedule.validate(&forest)?;
/// # Ok(())
/// # }
/// ```
pub fn ga_schedule(
    graph: &MixGraph,
    mixers: usize,
    config: &GaConfig,
) -> Result<Schedule, SchedError> {
    if mixers == 0 {
        return Err(SchedError::NoMixers);
    }
    let n = graph.node_count();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let population = config.population.max(2);

    // Initial population: random permutations plus a level-ordered seed.
    let mut individuals: Vec<Vec<u32>> = Vec::with_capacity(population);
    let mut level_seed: Vec<usize> = (0..n).collect();
    level_seed.sort_by_key(|&i| (graph.node(NodeId::new(i as u32)).level(), i));
    let mut seed_priorities = vec![0u32; n];
    for (rank, &i) in level_seed.iter().enumerate() {
        seed_priorities[i] = rank as u32;
    }
    individuals.push(seed_priorities.clone());
    for _ in 1..population {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        individuals.push(perm);
    }

    let fitness = |priorities: &[u32]| -> (f64, Schedule) {
        let schedule = decode(graph, mixers, priorities);
        let storage = schedule.storage(graph).peak as f64;
        (f64::from(schedule.makespan()) + config.storage_weight * storage, schedule)
    };

    let mut scored: Vec<(f64, Vec<u32>)> =
        individuals.into_iter().map(|ind| (fitness(&ind).0, ind)).collect();
    for _ in 0..config.generations {
        let mut next: Vec<(f64, Vec<u32>)> = Vec::with_capacity(population);
        // Elitism: keep the best individual.
        if let Some(best) = scored.iter().min_by(|a, b| a.0.total_cmp(&b.0)) {
            next.push(best.clone());
        }
        while next.len() < population {
            let (Some(a), Some(b)) = (
                tournament(&scored, config.tournament, &mut rng),
                tournament(&scored, config.tournament, &mut rng),
            ) else {
                break;
            };
            let mut child = order_crossover(a, b, &mut rng);
            for i in 0..n {
                if rng.gen::<f64>() < config.mutation_rate {
                    let j = rng.gen_range(0..n);
                    child.swap(i, j);
                }
            }
            let f = fitness(&child).0;
            next.push((f, child));
        }
        scored = next;
    }
    // `scored` is never empty (population >= 2); decode the level-ordered
    // seed rather than panic if that invariant ever broke.
    let best = scored.into_iter().min_by(|a, b| a.0.total_cmp(&b.0));
    Ok(match best {
        Some((_, priorities)) => decode(graph, mixers, &priorities),
        None => decode(graph, mixers, &seed_priorities),
    })
}

/// List-schedules with the chromosome as priority (lower value runs first).
fn decode(graph: &MixGraph, mixers: usize, priorities: &[u32]) -> Schedule {
    let n = graph.node_count();
    let mut deps = vec![0usize; n];
    for (id, node) in graph.iter() {
        deps[id.index()] =
            node.operands().iter().filter(|op| matches!(op, Operand::Droplet(_))).count();
    }
    let mut node_cycle = vec![0u32; n];
    let mut node_mixer = vec![0u32; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| deps[i] == 0).collect();
    let mut scheduled = 0usize;
    let mut t = 1u32;
    while scheduled < n {
        ready.sort_by_key(|&i| (priorities[i], i));
        let take = ready.len().min(mixers);
        let batch: Vec<usize> = ready.drain(..take).collect();
        for (mixer, &i) in batch.iter().enumerate() {
            node_cycle[i] = t;
            node_mixer[i] = mixer as u32;
            scheduled += 1;
            for &c in graph.consumers(NodeId::new(i as u32)) {
                deps[c.index()] -= 1;
                if deps[c.index()] == 0 {
                    ready.push(c.index());
                }
            }
        }
        t += 1;
    }
    Schedule::from_assignments(mixers, node_cycle, node_mixer)
}

fn tournament<'a>(
    scored: &'a [(f64, Vec<u32>)],
    size: usize,
    rng: &mut StdRng,
) -> Option<&'a [u32]> {
    if scored.is_empty() {
        return None;
    }
    let mut best = &scored[rng.gen_range(0..scored.len())];
    for _ in 1..size.max(1) {
        let candidate = &scored[rng.gen_range(0..scored.len())];
        if candidate.0 < best.0 {
            best = candidate;
        }
    }
    Some(&best.1)
}

/// Order crossover (OX) on priority permutations.
fn order_crossover(a: &[u32], b: &[u32], rng: &mut StdRng) -> Vec<u32> {
    let n = a.len();
    if n < 2 {
        return a.to_vec();
    }
    // Work on permutations of positions sorted by priority.
    let perm_of = |p: &[u32]| {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (p[i], i));
        idx
    };
    let pa = perm_of(a);
    let pb = perm_of(b);
    let (mut lo, mut hi) = (rng.gen_range(0..n), rng.gen_range(0..n));
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    let mut child_perm: Vec<Option<usize>> = vec![None; n];
    let mut used = vec![false; n];
    for i in lo..=hi {
        child_perm[i] = Some(pa[i]);
        used[pa[i]] = true;
    }
    let mut fill = pb.iter().copied().filter(|&v| !used[v]);
    let mut priorities = vec![0u32; n];
    for (rank, slot) in child_perm.into_iter().enumerate() {
        // Each empty slot has exactly one unused position left in `fill`
        // (a counting identity), so the fallback to `rank` never fires; it
        // only keeps the arithmetic total.
        let v = slot.or_else(|| fill.next()).unwrap_or(rank);
        priorities[v] = rank as u32;
    }
    priorities
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mms_schedule, optimal_makespan};
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::{MinMix, MixingAlgorithm};
    use dmf_ratio::TargetRatio;

    fn pcr_forest(demand: u64) -> MixGraph {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = MinMix.build_template(&target).unwrap();
        build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap()
    }

    #[test]
    fn ga_schedules_are_valid_and_deterministic() {
        let g = pcr_forest(16);
        let a = ga_schedule(&g, 3, &GaConfig::default()).unwrap();
        let b = ga_schedule(&g, 3, &GaConfig::default()).unwrap();
        a.validate(&g).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ga_finds_the_optimum_on_small_graphs() {
        let target = TargetRatio::new(vec![3, 5]).unwrap();
        let template = MinMix.build_template(&target).unwrap();
        let forest = build_forest(&template, &target, 6, ReusePolicy::AcrossTrees).unwrap();
        let config = GaConfig { storage_weight: 0.0, ..GaConfig::default() };
        let ga = ga_schedule(&forest, 2, &config).unwrap();
        let optimal = optimal_makespan(&forest, 2).unwrap();
        assert_eq!(ga.makespan(), optimal);
    }

    #[test]
    fn storage_weight_trades_time_for_storage() {
        let g = pcr_forest(20);
        let fast =
            ga_schedule(&g, 3, &GaConfig { storage_weight: 0.0, ..Default::default() }).unwrap();
        let lean =
            ga_schedule(&g, 3, &GaConfig { storage_weight: 4.0, ..Default::default() }).unwrap();
        fast.validate(&g).unwrap();
        lean.validate(&g).unwrap();
        assert!(lean.storage(&g).peak <= fast.storage(&g).peak);
    }

    #[test]
    fn ga_is_competitive_with_mms() {
        let g = pcr_forest(20);
        let ga =
            ga_schedule(&g, 3, &GaConfig { storage_weight: 0.0, ..Default::default() }).unwrap();
        let mms = mms_schedule(&g, 3).unwrap();
        assert!(ga.makespan() <= mms.makespan() + 1);
    }

    #[test]
    fn rejects_zero_mixers() {
        let g = pcr_forest(4);
        assert!(matches!(ga_schedule(&g, 0, &GaConfig::default()), Err(SchedError::NoMixers)));
    }
}
