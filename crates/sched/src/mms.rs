use crate::{SchedError, Schedule};
use dmf_mixgraph::{MixGraph, NodeId, Operand};
use std::collections::VecDeque;

/// `M_Mixers_Schedule` (paper Algorithm 1): level-synchronous FIFO
/// scheduling of a mixing forest with `mixers` on-chip mixers.
///
/// For each level `ℓ = 1..d` the newly schedulable vertices (those whose
/// operand droplets are already produced or come straight from reservoirs)
/// are appended to a FIFO queue ordered from level `ℓ` upwards, and up to
/// `Mc` vertices are dispatched per time-cycle; after the level sweep the
/// queue is drained at `Mc` vertices per cycle.
///
/// *Fidelity note*: the paper's pseudo-code stops enqueuing new schedulable
/// vertices in the drain loop, which starves vertices that only become
/// schedulable late when `Mc` is small; we keep enqueuing newly schedulable
/// vertices while draining, which is the evident intent (see DESIGN.md §3.7).
///
/// MMS is the latency-oriented scheduler: it completes no later than
/// [`crate::srs_schedule`] but typically holds more droplets in storage.
///
/// # Errors
///
/// Returns [`SchedError::NoMixers`] when `mixers == 0`.
///
/// # Examples
///
/// ```
/// use dmf_forest::{build_forest, ReusePolicy};
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
/// use dmf_sched::mms_schedule;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let template = MinMix.build_template(&target)?;
/// let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees)?;
/// let schedule = mms_schedule(&forest, 3)?;
/// schedule.validate(&forest)?;
/// # Ok(())
/// # }
/// ```
pub fn mms_schedule(graph: &MixGraph, mixers: usize) -> Result<Schedule, SchedError> {
    let _span = dmf_obs::span!("sched_mms");
    if mixers == 0 {
        return Err(SchedError::NoMixers);
    }
    let n = graph.node_count();
    let d = graph.depth();
    let mut deps = vec![0usize; n];
    for (id, node) in graph.iter() {
        deps[id.index()] =
            node.operands().iter().filter(|op| matches!(op, Operand::Droplet(_))).count();
    }
    let mut node_cycle = vec![0u32; n];
    let mut node_mixer = vec![0u32; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    // Vertices freed since the previous cycle, pending enqueue.
    let mut fresh: Vec<usize> = (0..n).filter(|&i| deps[i] == 0).collect();
    let mut scheduled = 0usize;
    let mut t = 1u32;

    let mut step = |queue: &mut VecDeque<usize>,
                    fresh: &mut Vec<usize>,
                    scheduled: &mut usize,
                    deps: &mut Vec<usize>,
                    t: u32| {
        // "Enqueue all new schedulable nodes ordered from level ℓ upwards":
        // ascending level, insertion order as the tie-break.
        fresh.sort_by_key(|&i| (graph.node(NodeId::new(i as u32)).level(), i));
        queue.extend(fresh.drain(..));
        for mixer in 0..mixers {
            let Some(i) = queue.pop_front() else { break };
            node_cycle[i] = t;
            node_mixer[i] = mixer as u32;
            *scheduled += 1;
            for &c in graph.consumers(NodeId::new(i as u32)) {
                deps[c.index()] -= 1;
                if deps[c.index()] == 0 {
                    fresh.push(c.index());
                }
            }
        }
    };

    for _level in 1..=d {
        step(&mut queue, &mut fresh, &mut scheduled, &mut deps, t);
        t += 1;
    }
    while scheduled < n {
        step(&mut queue, &mut fresh, &mut scheduled, &mut deps, t);
        t += 1;
    }
    Ok(Schedule::from_assignments(mixers, node_cycle, node_mixer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oms_schedule;
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::{MinMix, MixingAlgorithm};
    use dmf_ratio::TargetRatio;

    fn pcr_forest(demand: u64) -> MixGraph {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = MinMix.build_template(&target).unwrap();
        build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap()
    }

    #[test]
    fn schedules_are_valid_across_mixer_counts() {
        let g = pcr_forest(20);
        for m in 1..=6 {
            let s = mms_schedule(&g, m).unwrap();
            s.validate(&g).unwrap();
            assert!(s.makespan() as usize >= g.node_count() / m);
        }
    }

    #[test]
    fn base_tree_mms_matches_oms_with_enough_mixers() {
        // On a single base tree with Mlb mixers the level-synchronous sweep
        // is as fast as the optimal scheduler.
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let tree = MinMix.build_graph(&target).unwrap();
        let mms = mms_schedule(&tree, 3).unwrap();
        let oms = oms_schedule(&tree, 3).unwrap();
        assert_eq!(mms.makespan(), oms.makespan());
    }

    #[test]
    fn single_mixer_is_fully_serial() {
        let g = pcr_forest(8);
        let s = mms_schedule(&g, 1).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.makespan() as usize, g.node_count().max(g.depth() as usize));
    }

    #[test]
    fn rejects_zero_mixers() {
        let g = pcr_forest(4);
        assert!(matches!(mms_schedule(&g, 0), Err(SchedError::NoMixers)));
    }

    #[test]
    fn makespan_never_below_level_count() {
        // The level sweep burns one cycle per level by construction.
        let g = pcr_forest(16);
        let s = mms_schedule(&g, 16).unwrap();
        assert!(s.makespan() >= g.depth());
    }
}
