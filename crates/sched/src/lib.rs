//! Schedulers for mixing trees and mixing forests on DMF biochips.
//!
//! Maps every mix-split vertex of a [`dmf_mixgraph::MixGraph`] to a
//! `(time-cycle, mixer)` pair subject to precedence (operands first) and
//! mixer capacity (`Mc` concurrent mix-splits), and accounts for the on-chip
//! storage the schedule needs. Implements the three scheduling procedures of
//! the DAC 2014 paper:
//!
//! * [`oms_schedule`] — optimal scheduling of a *base mixing tree*. The
//!   paper uses OMS (Luo–Akella, IEEE TASE 2011); for unit-time tasks with
//!   in-forest precedence on identical machines, Hu's highest-level-first
//!   rule is makespan-optimal, so this is implemented as HLF list scheduling
//!   (see `DESIGN.md` §5 for the substitution argument). [`mixer_lower_bound`]
//!   computes `Mlb`, the fewest mixers achieving the critical-path makespan.
//! * [`mms_schedule`] — `M_Mixers_Schedule` (Algorithm 1): level-synchronous
//!   FIFO scheduling of a mixing forest, latency-oriented.
//! * [`srs_schedule`] — `Storage_Reduced_Scheduling` (Algorithm 2):
//!   two-queue priority scheduling that defers reservoir-fed mixes
//!   (Type-C) in favour of mixes consuming stored droplets (Type-A/B),
//!   trading a slightly longer completion time for fewer storage units.
//!
//! Storage accounting generalises `Counting_Storage_Units` (Algorithm 3) to
//! forest DAGs: every produced droplet occupies one storage unit from the
//! cycle after it is produced until the cycle before it is consumed; waste
//! droplets leave for the waste reservoir and targets are emitted, costing
//! nothing.
//!
//! Beyond the paper's two schedulers, the crate provides the alternatives
//! its related-work section points at, for ablation studies:
//!
//! * [`path_schedule`] — storage-lean depth-first path scheduling
//!   (Grissom–Brisk, DAC 2012);
//! * [`ga_schedule`] — genetic-algorithm search over priority permutations
//!   (after Su–Chakrabarty, ACM JETC 2008), tunable between latency and
//!   storage via [`GaConfig::storage_weight`];
//! * [`optimal_makespan`] — an exact subset-DP optimum for small graphs,
//!   used to certify the heuristics' gaps.
//!
//! # Examples
//!
//! ```
//! use dmf_forest::{build_forest, ReusePolicy};
//! use dmf_mixalgo::{MinMix, MixingAlgorithm};
//! use dmf_ratio::TargetRatio;
//! use dmf_sched::srs_schedule;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
//! let template = MinMix.build_template(&target)?;
//! let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees)?;
//! let schedule = srs_schedule(&forest, 3)?;
//! schedule.validate(&forest)?;
//! println!("Tc = {}, q = {}", schedule.makespan(), schedule.storage(&forest).peak);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod error;
mod ga;
mod gantt;
mod hu;
mod mms;
mod optimal;
mod path;
mod registry;
mod schedule;
mod srs;
mod storage;
mod svg;

pub use baseline::{repeated_baseline, RepeatedBaseline};
pub use error::SchedError;
pub use ga::{ga_schedule, GaConfig};
pub use hu::{critical_path, mixer_lower_bound, oms_schedule};
pub use mms::mms_schedule;
pub use optimal::{optimal_makespan, OPTIMAL_LIMIT};
pub use path::path_schedule;
pub use registry::{
    DuplicateSchedulerError, MmsScheduler, Scheduler, SchedulerEntry, SchedulerId,
    SchedulerRegistry, SrsScheduler, UnknownSchedulerError,
};
pub use schedule::{MixerId, Schedule};
pub use srs::srs_schedule;
pub use storage::StorageProfile;

/// Which forest scheduler to run — configuration surface for the engine and
/// the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// [`mms_schedule`] (Algorithm 1) — latency-oriented.
    Mms,
    /// [`srs_schedule`] (Algorithm 2) — storage-oriented.
    Srs,
}

impl SchedulerKind {
    /// Both schedulers, in the paper's order.
    pub const ALL: [SchedulerKind; 2] = [SchedulerKind::Mms, SchedulerKind::Srs];

    /// Short identifier ("MMS" / "SRS").
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Mms => "MMS",
            SchedulerKind::Srs => "SRS",
        }
    }

    /// Runs the selected scheduler.
    ///
    /// # Errors
    ///
    /// Same conditions as [`mms_schedule`] / [`srs_schedule`].
    pub fn run(
        self,
        graph: &dmf_mixgraph::MixGraph,
        mixers: usize,
    ) -> Result<Schedule, SchedError> {
        match self {
            SchedulerKind::Mms => mms_schedule(graph, mixers),
            SchedulerKind::Srs => srs_schedule(graph, mixers),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
