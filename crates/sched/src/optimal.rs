use dmf_mixgraph::{MixGraph, Operand};

/// Exact minimum makespan of a mixing graph on `mixers` machines, by
/// dynamic programming over executed-vertex subsets.
///
/// Exponential in the vertex count and therefore restricted to graphs with
/// at most [`OPTIMAL_LIMIT`] vertices; returns `None` beyond that (or for
/// zero mixers). Used by the test-suite and the ablation benchmarks to
/// certify how far the heuristic schedulers ([`crate::mms_schedule`],
/// [`crate::srs_schedule`]) and Hu's rule ([`crate::oms_schedule`]) sit
/// from the true optimum.
///
/// # Examples
///
/// ```
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
/// use dmf_sched::{optimal_makespan, oms_schedule};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let tree = MinMix.build_graph(&target)?;
/// let optimal = optimal_makespan(&tree, 3).expect("small tree");
/// assert_eq!(optimal, oms_schedule(&tree, 3)?.makespan()); // HLF is optimal on trees
/// # Ok(())
/// # }
/// ```
pub fn optimal_makespan(graph: &MixGraph, mixers: usize) -> Option<u32> {
    let n = graph.node_count();
    if mixers == 0 || n > OPTIMAL_LIMIT {
        return None;
    }
    if n == 0 {
        return Some(0);
    }
    // Predecessor masks: vertex i may run once preds[i] ⊆ done.
    let mut preds = vec![0u32; n];
    for (id, node) in graph.iter() {
        for op in node.operands() {
            if let Operand::Droplet(src) = op {
                preds[id.index()] |= 1 << src.index();
            }
        }
    }
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut dp = vec![u32::MAX; (full as usize) + 1];
    dp[0] = 0;
    for mask in 0u32..=full {
        if dp[mask as usize] == u32::MAX {
            continue;
        }
        // Ready vertices: not yet done, all predecessors done.
        let mut ready = 0u32;
        for (i, &pred) in preds.iter().enumerate().take(n) {
            let bit = 1u32 << i;
            if mask & bit == 0 && pred & !mask == 0 {
                ready |= bit;
            }
        }
        if ready == 0 {
            continue;
        }
        let next_cost = dp[mask as usize] + 1;
        // Enumerate non-empty batches of up to `mixers` ready vertices.
        let mut batch = ready;
        loop {
            if batch != 0 && (batch.count_ones() as usize) <= mixers {
                let next = (mask | batch) as usize;
                if next_cost < dp[next] {
                    dp[next] = next_cost;
                }
            }
            if batch == 0 {
                break;
            }
            batch = (batch - 1) & ready;
        }
    }
    (dp[full as usize] != u32::MAX).then_some(dp[full as usize])
}

/// Upper bound on the vertex count [`optimal_makespan`] accepts.
pub const OPTIMAL_LIMIT: usize = 20;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mms_schedule, oms_schedule, srs_schedule};
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::{BaseAlgorithm, MinMix, MixingAlgorithm};
    use dmf_ratio::TargetRatio;

    #[test]
    fn optimal_matches_hand_counted_cases() {
        // Single mix: 1 cycle regardless of mixers.
        let target = TargetRatio::new(vec![1, 1]).unwrap();
        let g = MinMix.build_graph(&target).unwrap();
        assert_eq!(optimal_makespan(&g, 1), Some(1));
        assert_eq!(optimal_makespan(&g, 4), Some(1));
        // PCR tree: 7 nodes, critical path 4, width 3.
        let pcr = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let t = MinMix.build_graph(&pcr).unwrap();
        assert_eq!(optimal_makespan(&t, 1), Some(7));
        assert_eq!(optimal_makespan(&t, 2), Some(5));
        assert_eq!(optimal_makespan(&t, 3), Some(4));
    }

    #[test]
    fn hlf_is_optimal_on_trees() {
        for parts in [
            vec![2, 1, 1, 1, 1, 1, 9],
            vec![3, 5],
            vec![5, 11],
            vec![1, 1, 2, 4, 8],
            vec![9, 7],
            vec![1, 2, 13],
        ] {
            let target = TargetRatio::new(parts.clone()).unwrap();
            let tree = MinMix.build_graph(&target).unwrap();
            if tree.node_count() > OPTIMAL_LIMIT {
                continue;
            }
            for m in 1..=4usize {
                let optimal = optimal_makespan(&tree, m).unwrap();
                let hlf = oms_schedule(&tree, m).unwrap().makespan();
                assert_eq!(hlf, optimal, "{parts:?} m={m}");
            }
        }
    }

    #[test]
    fn heuristics_stay_close_to_optimal_on_small_forests() {
        let target = TargetRatio::new(vec![3, 5]).unwrap();
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
        for demand in [4u64, 8, 12] {
            let forest =
                build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap();
            if forest.node_count() > OPTIMAL_LIMIT {
                continue;
            }
            for m in 1..=3usize {
                let optimal = optimal_makespan(&forest, m).unwrap();
                let mms = mms_schedule(&forest, m).unwrap().makespan();
                let srs = srs_schedule(&forest, m).unwrap().makespan();
                assert!(mms <= optimal + 2, "MMS {mms} vs opt {optimal} (D={demand} m={m})");
                assert!(srs <= optimal + 2, "SRS {srs} vs opt {optimal} (D={demand} m={m})");
                assert!(mms >= optimal && srs >= optimal);
            }
        }
    }

    #[test]
    fn oversized_graphs_are_refused() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
        let forest = build_forest(&template, &target, 32, ReusePolicy::AcrossTrees).unwrap();
        assert!(forest.node_count() > OPTIMAL_LIMIT);
        assert_eq!(optimal_makespan(&forest, 3), None);
        let small = MinMix.build_graph(&TargetRatio::new(vec![1, 1]).unwrap()).unwrap();
        assert_eq!(optimal_makespan(&small, 0), None);
    }
}
