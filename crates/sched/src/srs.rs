use crate::{SchedError, Schedule};
use dmf_mixgraph::{MixGraph, NodeId, Operand};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// `Storage_Reduced_Scheduling` (paper Algorithm 2): storage-oriented
/// priority scheduling of a mixing forest with `mixers` on-chip mixers.
///
/// Schedulable vertices are split by the storage cost of stalling them:
///
/// * **Type-A/B** (at least one operand is a stored droplet) go to `Qint`,
///   served first, *higher level first* — finishing them early both frees
///   their stored operands and unblocks the chains above them;
/// * **Type-C** (both operands straight from fluid reservoirs) go to
///   `Qleaf`, served with leftover mixers only, *lower level first* —
///   stalling them costs no storage at all.
///
/// Compared to [`crate::mms_schedule`] this may take a few extra cycles but
/// needs fewer storage units (paper Table 3: ~25% fewer on average for ~5%
/// more time).
///
/// # Errors
///
/// Returns [`SchedError::NoMixers`] when `mixers == 0`.
///
/// # Examples
///
/// ```
/// use dmf_forest::{build_forest, ReusePolicy};
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
/// use dmf_sched::srs_schedule;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's Fig. 3: PCR forest for D = 20 on three mixers.
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let template = MinMix.build_template(&target)?;
/// let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees)?;
/// let schedule = srs_schedule(&forest, 3)?;
/// schedule.validate(&forest)?;
/// # Ok(())
/// # }
/// ```
pub fn srs_schedule(graph: &MixGraph, mixers: usize) -> Result<Schedule, SchedError> {
    let _span = dmf_obs::span!("sched_srs");
    if mixers == 0 {
        return Err(SchedError::NoMixers);
    }
    let n = graph.node_count();
    let mut deps = vec![0usize; n];
    for (id, node) in graph.iter() {
        deps[id.index()] =
            node.operands().iter().filter(|op| matches!(op, Operand::Droplet(_))).count();
    }
    let mut node_cycle = vec![0u32; n];
    let mut node_mixer = vec![0u32; n];
    // Qint: higher level first; Qleaf: lower level first. Ties broken by
    // arrival order (sequence number) to stay deterministic.
    let mut q_int: BinaryHeap<(u32, Reverse<usize>)> = BinaryHeap::new();
    let mut q_leaf: BinaryHeap<(Reverse<u32>, Reverse<usize>)> = BinaryHeap::new();
    let mut seq = vec![0usize; n];
    let mut next_seq = 0usize;

    let classify = |i: usize| -> bool {
        // true => Type-C (both operands reservoir inputs).
        graph
            .node(NodeId::new(i as u32))
            .operands()
            .iter()
            .all(|op| matches!(op, Operand::Input(_)))
    };
    let enqueue = |i: usize,
                   q_int: &mut BinaryHeap<(u32, Reverse<usize>)>,
                   q_leaf: &mut BinaryHeap<(Reverse<u32>, Reverse<usize>)>,
                   next_seq: &mut usize,
                   seq: &mut Vec<usize>| {
        seq[i] = *next_seq;
        *next_seq += 1;
        let level = graph.node(NodeId::new(i as u32)).level();
        if classify(i) {
            q_leaf.push((Reverse(level), Reverse(seq[i])));
        } else {
            q_int.push((level, Reverse(seq[i])));
        }
    };
    // seq -> node index reverse map, filled on enqueue.
    let mut by_seq: Vec<usize> = Vec::new();

    let mut fresh: Vec<usize> = (0..n).filter(|&i| deps[i] == 0).collect();
    let mut scheduled = 0usize;
    let mut t = 1u32;
    while scheduled < n {
        fresh.sort_unstable();
        for i in fresh.drain(..) {
            enqueue(i, &mut q_int, &mut q_leaf, &mut next_seq, &mut seq);
            by_seq.push(i);
        }
        let mut batch: Vec<usize> = Vec::with_capacity(mixers);
        while batch.len() < mixers {
            if let Some((_, Reverse(s))) = q_int.pop() {
                batch.push(by_seq[s]);
            } else {
                break;
            }
        }
        while batch.len() < mixers {
            if let Some((_, Reverse(s))) = q_leaf.pop() {
                batch.push(by_seq[s]);
            } else {
                break;
            }
        }
        debug_assert!(!batch.is_empty(), "a DAG always has a schedulable vertex");
        for (mixer, &i) in batch.iter().enumerate() {
            node_cycle[i] = t;
            node_mixer[i] = mixer as u32;
            scheduled += 1;
            for &c in graph.consumers(NodeId::new(i as u32)) {
                deps[c.index()] -= 1;
                if deps[c.index()] == 0 {
                    fresh.push(c.index());
                }
            }
        }
        t += 1;
    }
    Ok(Schedule::from_assignments(mixers, node_cycle, node_mixer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mms_schedule;
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::{MinMix, MixingAlgorithm, Rma};
    use dmf_ratio::TargetRatio;

    fn pcr_forest(demand: u64) -> MixGraph {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = MinMix.build_template(&target).unwrap();
        build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap()
    }

    #[test]
    fn fig3_oracle_three_mixers_demand_20() {
        // Paper Figs. 2-4: Tc = 11, q = 5.
        let g = pcr_forest(20);
        let s = srs_schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.makespan(), 11, "Tc");
        assert_eq!(s.storage(&g).peak, 5, "q");
    }

    #[test]
    fn storage_is_reduced_on_aggregate() {
        // SRS trades completion time for storage. It is a heuristic, so it
        // need not dominate MMS on every instance (the paper reports a
        // ~25% *average* reduction); we require a clear aggregate win over
        // a sweep of demands and mixer counts, with MMS never slower.
        let mut srs_total = 0usize;
        let mut mms_total = 0usize;
        for demand in [8u64, 16, 20, 32] {
            let g = pcr_forest(demand);
            for m in 1..=5 {
                let srs = srs_schedule(&g, m).unwrap();
                let mms = mms_schedule(&g, m).unwrap();
                srs.validate(&g).unwrap();
                mms.validate(&g).unwrap();
                assert!(mms.makespan() <= srs.makespan(), "MMS is the latency-oriented one");
                srs_total += srs.storage(&g).peak;
                mms_total += mms.storage(&g).peak;
            }
        }
        assert!(
            (srs_total as f64) < 0.85 * mms_total as f64,
            "expected a clear storage win: srs={srs_total} mms={mms_total}"
        );
    }

    #[test]
    fn storage_win_grows_with_demand() {
        // Where the forest actually carries cross-tree waste (D = 20, 32),
        // SRS with the paper's three mixers needs strictly less storage.
        for demand in [20u64, 32] {
            let g = pcr_forest(demand);
            let srs = srs_schedule(&g, 3).unwrap();
            let mms = mms_schedule(&g, 3).unwrap();
            assert!(
                srs.storage(&g).peak < mms.storage(&g).peak,
                "D={demand}: srs={} mms={}",
                srs.storage(&g).peak,
                mms.storage(&g).peak
            );
        }
    }

    #[test]
    fn completion_no_faster_than_critical_work() {
        let g = pcr_forest(16);
        for m in 1..=4 {
            let s = srs_schedule(&g, m).unwrap();
            let lb = (g.node_count() as u32).div_ceil(m as u32).max(g.depth());
            assert!(s.makespan() >= lb);
        }
    }

    #[test]
    fn works_on_rma_seeded_forests() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = Rma.build_template(&target).unwrap();
        let g = build_forest(&template, &target, 32, ReusePolicy::AcrossTrees).unwrap();
        let s = srs_schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
    }

    #[test]
    fn rejects_zero_mixers() {
        let g = pcr_forest(4);
        assert!(matches!(srs_schedule(&g, 0), Err(SchedError::NoMixers)));
    }
}
