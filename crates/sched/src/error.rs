use dmf_mixgraph::NodeId;
use std::error::Error;
use std::fmt;

/// Error raised while computing or validating a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// A schedule needs at least one mixer.
    NoMixers,
    /// The scheduler is restricted to in-trees but was given a DAG with
    /// shared droplets (a vertex with two consumers).
    NotATree {
        /// The vertex with more than one consumer.
        node: NodeId,
    },
    /// A vertex executes before one of its operand producers.
    PrecedenceViolated {
        /// The too-early consumer.
        node: NodeId,
        /// The producer it depends on.
        operand: NodeId,
    },
    /// More vertices than mixers were assigned to one time-cycle.
    MixerOverSubscribed {
        /// The over-full cycle.
        cycle: u32,
    },
    /// Two vertices share a mixer in the same cycle.
    MixerConflict {
        /// The cycle of the conflict.
        cycle: u32,
        /// The doubly-assigned mixer index.
        mixer: usize,
    },
    /// A vertex was never assigned a cycle.
    Unscheduled {
        /// The missing vertex.
        node: NodeId,
    },
    /// The schedule mentions a vertex the graph does not contain.
    SizeMismatch {
        /// Vertices in the schedule.
        scheduled: usize,
        /// Vertices in the graph.
        graph: usize,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoMixers => write!(f, "at least one on-chip mixer is required"),
            SchedError::NotATree { node } => {
                write!(f, "vertex {node} has multiple consumers; expected a tree")
            }
            SchedError::PrecedenceViolated { node, operand } => {
                write!(f, "vertex {node} runs no later than its operand {operand}")
            }
            SchedError::MixerOverSubscribed { cycle } => {
                write!(f, "cycle {cycle} uses more vertices than mixers")
            }
            SchedError::MixerConflict { cycle, mixer } => {
                write!(f, "mixer M{} assigned twice in cycle {cycle}", mixer + 1)
            }
            SchedError::Unscheduled { node } => write!(f, "vertex {node} was never scheduled"),
            SchedError::SizeMismatch { scheduled, graph } => {
                write!(f, "schedule covers {scheduled} vertices but graph has {graph}")
            }
        }
    }
}

impl Error for SchedError {}
