use crate::{SchedError, Schedule};
use dmf_mixgraph::{MixGraph, NodeId, Operand};

/// Length of the longest precedence chain — the makespan lower bound
/// achieved with unlimited mixers (equals the structural depth `d` of a
/// base mixing tree).
pub fn critical_path(graph: &MixGraph) -> u32 {
    graph.depth()
}

/// Optimal mix scheduling (`OMS`) of a base mixing tree with `mixers`
/// on-chip mixers.
///
/// Implemented as Hu's highest-level-first list scheduling, which is
/// makespan-optimal for unit-time tasks with in-forest precedence — the same
/// guarantee the paper gets from Luo–Akella's OMS. Accepts arbitrary mixing
/// DAGs (shared droplets from `dmf_mixalgo::Mtcs`-style sharing), for
/// which HLF is a well-behaved heuristic rather than provably optimal.
///
/// # Errors
///
/// Returns [`SchedError::NoMixers`] when `mixers == 0`.
///
/// # Examples
///
/// ```
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
/// use dmf_sched::{critical_path, oms_schedule};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let tree = MinMix.build_graph(&target)?;
/// let schedule = oms_schedule(&tree, 3)?;
/// assert_eq!(schedule.makespan(), critical_path(&tree)); // Mlb = 3 suffices
/// # Ok(())
/// # }
/// ```
pub fn oms_schedule(graph: &MixGraph, mixers: usize) -> Result<Schedule, SchedError> {
    let _span = dmf_obs::span!("sched_oms");
    if mixers == 0 {
        return Err(SchedError::NoMixers);
    }
    let n = graph.node_count();
    // Hu levels: longest distance to a root, computed consumers-first.
    // Arena order is topological (operands precede consumers), so a reverse
    // sweep sees every consumer before its producer.
    let mut hu_level = vec![0u32; n];
    for i in (0..n).rev() {
        let id = NodeId::new(i as u32);
        for &c in graph.consumers(id) {
            hu_level[i] = hu_level[i].max(hu_level[c.index()] + 1);
        }
    }
    let mut deps = vec![0usize; n];
    for (id, node) in graph.iter() {
        deps[id.index()] =
            node.operands().iter().filter(|op| matches!(op, Operand::Droplet(_))).count();
    }
    let mut node_cycle = vec![0u32; n];
    let mut node_mixer = vec![0u32; n];
    // Ready list kept sorted by (hu_level desc, index asc).
    let mut ready: Vec<usize> = (0..n).filter(|&i| deps[i] == 0).collect();
    let mut scheduled = 0usize;
    let mut t = 1u32;
    while scheduled < n {
        ready.sort_by_key(|&i| (std::cmp::Reverse(hu_level[i]), i));
        let take = ready.len().min(mixers);
        let batch: Vec<usize> = ready.drain(..take).collect();
        debug_assert!(!batch.is_empty(), "a DAG always has a ready vertex");
        for (mixer, &i) in batch.iter().enumerate() {
            node_cycle[i] = t;
            node_mixer[i] = mixer as u32;
            scheduled += 1;
            for &c in graph.consumers(NodeId::new(i as u32)) {
                deps[c.index()] -= 1;
                if deps[c.index()] == 0 {
                    ready.push(c.index());
                }
            }
        }
        t += 1;
    }
    Ok(Schedule::from_assignments(mixers, node_cycle, node_mixer))
}

/// The paper's `Mlb`: the fewest on-chip mixers for which the tree still
/// completes in its critical-path time (the "minimum number of mixers needed
/// for fastest execution").
///
/// # Errors
///
/// Propagates scheduling failures (none in practice for valid graphs).
///
/// # Examples
///
/// ```
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
/// use dmf_sched::mixer_lower_bound;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's PCR base tree needs three mixers (§5).
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let tree = MinMix.build_graph(&target)?;
/// assert_eq!(mixer_lower_bound(&tree)?, 3);
/// # Ok(())
/// # }
/// ```
pub fn mixer_lower_bound(graph: &MixGraph) -> Result<usize, SchedError> {
    let bound = critical_path(graph);
    // Width of the widest structural level caps the useful mixer count.
    let mut width = std::collections::HashMap::new();
    for (_, node) in graph.iter() {
        *width.entry(node.level()).or_insert(0usize) += 1;
    }
    let max_width = width.values().copied().max().unwrap_or(1).max(1);
    for m in 1..=max_width {
        if oms_schedule(graph, m)?.makespan() == bound {
            return Ok(m);
        }
    }
    Ok(max_width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_mixalgo::{MinMix, MixingAlgorithm, Rma};
    use dmf_ratio::TargetRatio;

    fn pcr_tree() -> MixGraph {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        MinMix.build_graph(&target).unwrap()
    }

    #[test]
    fn single_mixer_serialises_everything() {
        let g = pcr_tree();
        let s = oms_schedule(&g, 1).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.makespan() as usize, g.node_count());
    }

    #[test]
    fn unlimited_mixers_hit_critical_path() {
        let g = pcr_tree();
        let s = oms_schedule(&g, 16).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.makespan(), critical_path(&g));
    }

    #[test]
    fn pcr_mlb_is_three_matching_section5() {
        let g = pcr_tree();
        assert_eq!(mixer_lower_bound(&g).unwrap(), 3);
        let s = oms_schedule(&g, 3).unwrap();
        assert_eq!(s.makespan(), 4);
        // Two mixers cannot reach the critical path.
        assert!(oms_schedule(&g, 2).unwrap().makespan() > 4);
    }

    #[test]
    fn makespan_is_monotone_in_mixers_for_trees() {
        let target = TargetRatio::new(vec![9, 17, 26, 9, 195]).unwrap();
        for graph in [MinMix.build_graph(&target).unwrap(), Rma.build_graph(&target).unwrap()] {
            let mut prev = u32::MAX;
            for m in 1..=8 {
                let s = oms_schedule(&graph, m).unwrap();
                s.validate(&graph).unwrap();
                assert!(s.makespan() <= prev);
                prev = s.makespan();
            }
        }
    }

    #[test]
    fn rejects_zero_mixers() {
        let g = pcr_tree();
        assert!(matches!(oms_schedule(&g, 0), Err(SchedError::NoMixers)));
    }

    #[test]
    fn hlf_is_optimal_on_small_trees_by_exhaustion() {
        // Brute-force optimality check: for small trees and 2 mixers, no
        // schedule can beat HLF. We lower-bound by ceil(n/m) and chain
        // length; HLF must match the true optimum computed by DP over
        // antichains for these tiny instances.
        for parts in [vec![3, 5], vec![3, 1], vec![5, 11], vec![1, 1, 2, 4]] {
            let target = TargetRatio::new(parts).unwrap();
            let g = MinMix.build_graph(&target).unwrap();
            let s = oms_schedule(&g, 2).unwrap();
            let n = g.node_count() as u32;
            let lb = critical_path(&g).max(n.div_ceil(2));
            assert_eq!(s.makespan(), lb, "HLF should reach the lower bound on trees");
        }
    }
}
