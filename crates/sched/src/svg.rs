//! SVG rendering of schedules — a graphical version of the paper's Fig. 4
//! modified Gantt chart, with the storage-occupancy track underneath.

use crate::Schedule;
use dmf_mixgraph::MixGraph;
use std::fmt::Write as _;

const COL: u32 = 52;
const ROW: u32 = 28;
const LEFT: u32 = 70;
const TOP: u32 = 30;

impl Schedule {
    /// Renders the schedule as a standalone SVG Gantt chart: one row per
    /// mixer, one column per time-cycle, labels `m_{i,j}` as in the paper,
    /// and a storage-occupancy bar track at the bottom.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmf_forest::{build_forest, ReusePolicy};
    /// use dmf_mixalgo::{MinMix, MixingAlgorithm};
    /// use dmf_ratio::TargetRatio;
    /// use dmf_sched::srs_schedule;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
    /// let template = MinMix.build_template(&target)?;
    /// let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees)?;
    /// let svg = srs_schedule(&forest, 3)?.to_svg(&forest);
    /// assert!(svg.starts_with("<svg"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_svg(&self, graph: &MixGraph) -> String {
        let labels = graph.labels();
        let tc = self.makespan();
        let storage = self.storage(graph);
        let max_storage = storage.peak.max(1) as u32;
        let rows = self.mixer_count() as u32;
        let width = LEFT + tc * COL + 10;
        let height = TOP + rows * ROW + 20 + ROW * 2 + 30;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
             font-family=\"sans-serif\" font-size=\"10\">"
        );
        // Cycle headers.
        for t in 1..=tc {
            let _ = writeln!(
                out,
                "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{t}</text>",
                LEFT + (t - 1) * COL + COL / 2,
                TOP - 10
            );
        }
        // Mixer rows.
        for m in 0..rows {
            let y = TOP + m * ROW;
            let _ = writeln!(
                out,
                "  <text x=\"{}\" y=\"{}\" text-anchor=\"end\" dominant-baseline=\"middle\">M{}</text>",
                LEFT - 8,
                y + ROW / 2,
                m + 1
            );
            for t in 0..tc {
                let _ = writeln!(
                    out,
                    "  <rect x=\"{}\" y=\"{y}\" width=\"{COL}\" height=\"{ROW}\" \
                     fill=\"none\" stroke=\"#ccc\"/>",
                    LEFT + t * COL
                );
            }
        }
        // Scheduled operations, tinted by component tree.
        for (id, node) in graph.iter() {
            let t = self.cycle_of(id) - 1;
            let m = self.mixer_of(id).0 as u32;
            let hue = (node.tree() * 47) % 360;
            let x = LEFT + t * COL;
            let y = TOP + m * ROW;
            let _ = writeln!(
                out,
                "  <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" rx=\"3\" \
                 fill=\"hsl({hue}, 60%, 82%)\" stroke=\"hsl({hue}, 50%, 40%)\"/>",
                x + 2,
                y + 2,
                COL - 4,
                ROW - 4
            );
            let _ = writeln!(
                out,
                "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" dominant-baseline=\"middle\">{}</text>",
                x + COL / 2,
                y + ROW / 2,
                labels[id.index()]
            );
        }
        // Storage track.
        let track_top = TOP + rows * ROW + 20;
        let _ = writeln!(
            out,
            "  <text x=\"{}\" y=\"{}\" text-anchor=\"end\" dominant-baseline=\"middle\">storage</text>",
            LEFT - 8,
            track_top + ROW
        );
        for (t, &occ) in storage.occupancy.iter().enumerate() {
            let h = (u64::from(occ) * u64::from(ROW * 2) / u64::from(max_storage)) as u32;
            let x = LEFT + t as u32 * COL;
            let _ = writeln!(
                out,
                "  <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{h}\" fill=\"#9aa7b5\"/>",
                x + 4,
                track_top + ROW * 2 - h,
                COL - 8
            );
            let _ = writeln!(
                out,
                "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{occ}</text>",
                x + COL / 2,
                track_top + ROW * 2 + 12
            );
        }
        let _ = writeln!(
            out,
            "  <text x=\"{LEFT}\" y=\"{}\">Tc = {} cycles, q = {}</text>",
            track_top + ROW * 2 + 28,
            tc,
            storage.peak
        );
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::srs_schedule;
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::{MinMix, MixingAlgorithm};
    use dmf_ratio::TargetRatio;

    #[test]
    fn svg_gantt_contains_labels_and_storage() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = MinMix.build_template(&target).unwrap();
        let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees).unwrap();
        let schedule = srs_schedule(&forest, 3).unwrap();
        let svg = schedule.to_svg(&forest);
        for label in forest.labels() {
            assert!(svg.contains(&label), "missing {label}");
        }
        assert!(svg.contains("Tc = 11 cycles, q = 5"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }
}
