use crate::{MixGraph, Operand};
use std::fmt;

/// Aggregate figures of merit of a mixing tree or forest, matching the
/// paper's notation: `Tms` mix-splits, `W` waste droplets, `I[]`/`I` input
/// droplets, `|F|` component trees.
///
/// Droplet conservation ties these together: each mix consumes 2 droplets
/// and produces 2, so `I = targets + W` always holds
/// (`targets = 2 * trees`). [`GraphStats::assert_conservation`] checks this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Total number of (1:1) mix-split operations, `Tms`.
    pub mix_splits: usize,
    /// Total number of waste droplets, `W`.
    pub waste: usize,
    /// Input droplets required per fluid, `I[]`.
    pub inputs: Vec<u64>,
    /// Total input droplets, `I`.
    pub input_total: u64,
    /// Number of component trees, `|F|` (each emits two target droplets).
    pub trees: usize,
    /// Structural depth of the graph (accuracy level `d` for a base tree).
    pub depth: u32,
}

impl GraphStats {
    pub(crate) fn collect(graph: &MixGraph) -> GraphStats {
        let mut inputs = vec![0u64; graph.fluid_count()];
        let mut waste = 0usize;
        for (id, node) in graph.iter() {
            for op in node.operands() {
                if let Operand::Input(f) = op {
                    inputs[f.0] += 1;
                }
            }
            waste += graph.waste_of(id);
        }
        GraphStats {
            mix_splits: graph.node_count(),
            waste,
            input_total: inputs.iter().sum(),
            inputs,
            trees: graph.tree_count(),
            depth: graph.depth(),
        }
    }

    /// Number of emitted target droplets (`2 |F|`).
    pub fn targets(&self) -> usize {
        self.trees * 2
    }

    /// Asserts the droplet-conservation identity `I = targets + W`.
    ///
    /// # Panics
    ///
    /// Panics when conservation is violated, which would indicate a
    /// construction bug.
    pub fn assert_conservation(&self) {
        assert_eq!(
            self.input_total as usize,
            self.targets() + self.waste,
            "droplet conservation violated: I = {} but targets + W = {} + {}",
            self.input_total,
            self.targets(),
            self.waste
        );
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|F|={} Tms={} W={} I={} I[]=[{}]",
            self.trees,
            self.mix_splits,
            self.waste,
            self.input_total,
            self.inputs.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, Operand};
    use dmf_ratio::{FluidId, TargetRatio};

    #[test]
    fn stats_of_small_tree() {
        // 3:1 dilution: two mixes, three inputs, one waste (inner node's
        // second droplet), two targets.
        let target = TargetRatio::new(vec![3, 1]).unwrap();
        let mut b = GraphBuilder::new(2);
        let half = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let root = b.mix(Operand::Input(FluidId(0)), Operand::Droplet(half)).unwrap();
        b.finish_tree(root);
        let g = b.finish(&target).unwrap();
        let s = g.stats();
        assert_eq!(s.mix_splits, 2);
        assert_eq!(s.waste, 1);
        assert_eq!(s.inputs, vec![2, 1]);
        assert_eq!(s.input_total, 3);
        assert_eq!(s.trees, 1);
        assert_eq!(s.depth, 2);
        s.assert_conservation();
    }

    #[test]
    fn display_is_informative() {
        let target = TargetRatio::new(vec![1, 1]).unwrap();
        let mut b = GraphBuilder::new(2);
        let root = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        b.finish_tree(root);
        let g = b.finish(&target).unwrap();
        let text = g.stats().to_string();
        assert!(text.contains("Tms=1"));
        assert!(text.contains("W=0"));
    }
}
