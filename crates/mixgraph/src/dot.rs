//! Graphviz (DOT) export of mixing graphs, colour-coded like the paper's
//! figures: grey input droplets, green used intermediates, brown reuse
//! edges, double circles for targets.

use crate::{MixGraph, Operand};
use std::fmt::Write as _;

impl MixGraph {
    /// Renders the graph in Graphviz DOT syntax.
    ///
    /// Component trees become clusters `T1 … T|F|`; cross-tree reuse edges
    /// (the paper's brown nodes) are drawn dashed in brown. Pipe the output
    /// through `dot -Tsvg` to obtain figures analogous to Figs. 1–3.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmf_mixgraph::{GraphBuilder, Operand};
    /// use dmf_ratio::{FluidId, TargetRatio};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let target = TargetRatio::new(vec![1, 1])?;
    /// let mut b = GraphBuilder::new(2);
    /// let root = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1)))?;
    /// b.finish_tree(root);
    /// let dot = b.finish(&target)?.to_dot();
    /// assert!(dot.starts_with("digraph mixing_forest"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let labels = self.labels();
        let mut out = String::new();
        out.push_str("digraph mixing_forest {\n  rankdir=BT;\n  node [fontsize=10];\n");
        for tree in 0..self.tree_count() as u32 {
            let _ = writeln!(out, "  subgraph cluster_t{} {{", tree + 1);
            let _ = writeln!(out, "    label=\"T{}\";", tree + 1);
            for id in self.tree_nodes(tree) {
                let node = self.node(id);
                let shape = if self.is_root(id) { "doublecircle" } else { "circle" };
                let _ = writeln!(
                    out,
                    "    {} [label=\"{}\\n{}\" shape={}];",
                    id,
                    labels[id.index()],
                    node.mixture(),
                    shape
                );
            }
            out.push_str("  }\n");
        }
        let mut input_seq = 0usize;
        for (id, node) in self.iter() {
            for op in node.operands() {
                match op {
                    Operand::Input(f) => {
                        let leaf = format!("in{input_seq}");
                        input_seq += 1;
                        let _ = writeln!(
                            out,
                            "  {leaf} [label=\"{f}\" shape=box style=filled fillcolor=lightgrey];"
                        );
                        let _ = writeln!(out, "  {leaf} -> {id};");
                    }
                    Operand::Droplet(src) => {
                        let reuse = self.node(src).tree() != node.tree();
                        if reuse {
                            let _ = writeln!(
                                out,
                                "  {src} -> {id} [color=brown style=dashed label=\"reuse\"];"
                            );
                        } else {
                            let _ = writeln!(out, "  {src} -> {id};");
                        }
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, Operand};
    use dmf_ratio::{FluidId, TargetRatio};

    #[test]
    fn dot_marks_reuse_edges() {
        // Two trees; the second reuses the first tree's inner waste droplet.
        let target = TargetRatio::new(vec![3, 1]).unwrap();
        let mut b = GraphBuilder::new(2);
        let half = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let r1 = b.mix(Operand::Input(FluidId(0)), Operand::Droplet(half)).unwrap();
        b.finish_tree(r1);
        let r2 = b.mix(Operand::Input(FluidId(0)), Operand::Droplet(half)).unwrap();
        b.finish_tree(r2);
        let g = b.finish(&target).unwrap();
        let dot = g.to_dot();
        assert!(dot.contains("reuse"));
        assert!(dot.contains("cluster_t2"));
        assert!(dot.contains("doublecircle"));
    }
}
