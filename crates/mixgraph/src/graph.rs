use crate::{GraphError, GraphStats};
use dmf_ratio::{FluidId, Mixture};
use std::borrow::Cow;
use std::fmt;

/// Identifier of a mix-split vertex inside a [`MixGraph`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw arena index.
    ///
    /// Only meaningful for ids obtained from the same graph/builder; useful
    /// for tests and serialisation layers.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The arena index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operand of a (1:1) mix-split operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A fresh unit droplet dispensed from the reservoir of a pure reagent.
    Input(FluidId),
    /// A droplet produced by another mix-split vertex. This covers both
    /// parent-child edges inside one component tree and the cross-tree
    /// *waste-reuse* edges of a mixing forest (the paper's brown nodes).
    Droplet(NodeId),
}

/// One (1:1) mix-split operation.
///
/// Executing the node merges its two operand droplets and splits the result
/// into **two** identical unit droplets. In a non-root node one or both of
/// those droplets feed consumer nodes and the remainder is waste; in a root
/// node both droplets are emitted target droplets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixNode {
    pub(crate) left: Operand,
    pub(crate) right: Operand,
    pub(crate) mixture: Mixture,
    pub(crate) level: u32,
    pub(crate) tree: u32,
}

impl MixNode {
    /// Builds a node from raw parts, without consistency checks.
    ///
    /// Together with [`MixGraph::from_raw_parts`] this allows external
    /// deserialisers — and deliberately corrupting test harnesses such as
    /// the `dmf-check` mutation suite — to assemble graphs that bypass
    /// [`crate::GraphBuilder`]'s validation.
    pub fn new(left: Operand, right: Operand, mixture: Mixture, level: u32, tree: u32) -> Self {
        MixNode { left, right, mixture, level, tree }
    }

    /// Left operand.
    pub fn left(&self) -> Operand {
        self.left
    }

    /// Right operand.
    pub fn right(&self) -> Operand {
        self.right
    }

    /// Both operands, left first.
    pub fn operands(&self) -> [Operand; 2] {
        [self.left, self.right]
    }

    /// Content of each droplet the node produces (canonicalised).
    pub fn mixture(&self) -> &Mixture {
        &self.mixture
    }

    /// Structural level of the node: `max(level(operands)) + 1`, where
    /// reservoir inputs sit at level 0. In a depth-`d` base mixing tree the
    /// root has level `d` — the same convention as the paper's figures.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Index of the component tree this node belongs to (0-based; the
    /// paper's `T1` is tree 0).
    pub fn tree(&self) -> u32 {
        self.tree
    }
}

/// An immutable, validated mixing tree / mixing forest.
///
/// Construct one with [`crate::GraphBuilder`]. The graph is guaranteed to be
/// acyclic and droplet-conserving: every vertex produces exactly two unit
/// droplets, each consumed by at most two other vertices; root vertices are
/// never consumed (their droplets are the emitted targets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixGraph {
    pub(crate) fluid_count: usize,
    pub(crate) nodes: Vec<MixNode>,
    pub(crate) roots: Vec<NodeId>,
    /// Consumers of each node's two output droplets (up to two).
    pub(crate) consumers: Vec<Vec<NodeId>>,
    /// One target mixture per component tree (all equal for MDST graphs).
    pub(crate) targets: Vec<Mixture>,
}

impl MixGraph {
    /// Assembles a graph from raw parts **without validation**, deriving
    /// the consumer lists from the node operands.
    ///
    /// [`crate::GraphBuilder`] remains the safe construction path; this
    /// constructor exists for deserialisation layers and for tests that
    /// need structurally corrupt graphs (e.g. pitting `dmf-check` against
    /// mutated artifacts). Call [`MixGraph::validate`] before executing a
    /// graph assembled this way.
    pub fn from_raw_parts(
        fluid_count: usize,
        nodes: Vec<MixNode>,
        roots: Vec<NodeId>,
        targets: Vec<Mixture>,
    ) -> Self {
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            for op in node.operands() {
                if let Operand::Droplet(src) = op {
                    if src.index() < consumers.len() {
                        consumers[src.index()].push(NodeId(i as u32));
                    }
                }
            }
        }
        MixGraph { fluid_count, nodes, roots, consumers, targets }
    }

    /// Number of fluids in the underlying fluid set.
    pub fn fluid_count(&self) -> usize {
        self.fluid_count
    }

    /// The target mixture of the first component tree (canonical form).
    /// For MDST graphs every tree shares this target; multi-target (SDMT)
    /// graphs expose the full list via [`MixGraph::targets`].
    pub fn target(&self) -> &Mixture {
        &self.targets[0]
    }

    /// Target mixtures, one per component tree.
    pub fn targets(&self) -> &[Mixture] {
        &self.targets
    }

    /// Number of mix-split vertices (`Tms` when applied to a full forest).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Accesses a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &MixNode {
        &self.nodes[id.index()]
    }

    /// Iterates over all vertices in arena (construction) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &MixNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The root vertices, one per component tree, in tree order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Number of component trees (`|F|`).
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Whether the vertex is the root of a component tree.
    pub fn is_root(&self, id: NodeId) -> bool {
        let tree = self.nodes[id.index()].tree;
        self.roots.get(tree as usize).copied() == Some(id)
    }

    /// Vertices that consume droplets produced by `id` (0–2 entries).
    pub fn consumers(&self, id: NodeId) -> &[NodeId] {
        &self.consumers[id.index()]
    }

    /// Number of waste droplets contributed by vertex `id`
    /// (`2 - consumers`, or 0 for a root whose droplets are targets).
    pub fn waste_of(&self, id: NodeId) -> usize {
        if self.is_root(id) {
            0
        } else {
            2 - self.consumers(id).len()
        }
    }

    /// The vertices of component tree `tree`, in arena order.
    pub fn tree_nodes(&self, tree: u32) -> Vec<NodeId> {
        self.iter().filter(|(_, n)| n.tree == tree).map(|(id, _)| id).collect()
    }

    /// Depth of the graph: the maximum structural level over all vertices
    /// (equals the accuracy `d` for a well-formed base tree).
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Breadth-first `m_ij` labels matching the paper's figures: vertex `j`
    /// of component tree `i` in left-to-right BFS order from the root
    /// (1-based, root is `m_{i,1}`).
    ///
    /// Cross-tree (reuse) operands are not traversed — they are leaves of the
    /// component tree, exactly as the brown nodes in Figs. 1–3.
    pub fn labels(&self) -> Vec<String> {
        let mut labels = vec![String::new(); self.nodes.len()];
        for (tree, &root) in self.roots.iter().enumerate() {
            let mut queue = std::collections::VecDeque::from([root]);
            let mut j = 1usize;
            while let Some(id) = queue.pop_front() {
                labels[id.index()] = format!("m{},{}", tree + 1, j);
                j += 1;
                for op in self.nodes[id.index()].operands() {
                    if let Operand::Droplet(child) = op {
                        if self.nodes[child.index()].tree == tree as u32 {
                            queue.push_back(child);
                        }
                    }
                }
            }
        }
        labels
    }

    /// Full structural re-validation: droplet conservation, consumer limits,
    /// mixture arithmetic and root/target agreement. `GraphBuilder::finish`
    /// already guarantees these; this is exposed for tests and for graphs
    /// deserialised from external sources.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`GraphError`].
    pub fn validate(&self) -> Result<(), GraphError> {
        for (id, node) in self.iter() {
            let left = self.operand_mixture(node.left)?;
            let right = self.operand_mixture(node.right)?;
            let mixed = left.mix(right.as_ref()).map_err(GraphError::Ratio)?;
            if mixed != node.mixture {
                return Err(GraphError::MixtureMismatch { node: id });
            }
            let consumers = self.consumers(id).len();
            if self.is_root(id) {
                if consumers != 0 {
                    return Err(GraphError::RootConsumed { node: id });
                }
                if node.mixture != self.targets[node.tree as usize] {
                    return Err(GraphError::WrongTarget { node: id });
                }
            } else {
                if consumers == 0 {
                    return Err(GraphError::DanglingNode { node: id });
                }
                if consumers > 2 {
                    return Err(GraphError::OverconsumedDroplet { node: id });
                }
            }
        }
        Ok(())
    }

    /// Aggregate statistics (`Tms`, `W`, `I[]`, `I`, `|F|`, depth).
    pub fn stats(&self) -> GraphStats {
        GraphStats::collect(self)
    }

    /// The content an operand contributes: borrowed straight from the
    /// arena for droplet operands (the hot case — no CF-vector copy),
    /// freshly constructed only for reservoir inputs.
    pub(crate) fn operand_mixture(&self, op: Operand) -> Result<Cow<'_, Mixture>, GraphError> {
        match op {
            Operand::Input(f) => {
                Mixture::try_pure(f.0, self.fluid_count).map(Cow::Owned).map_err(GraphError::Ratio)
            }
            Operand::Droplet(id) => {
                if id.index() >= self.nodes.len() {
                    return Err(GraphError::UnknownNode { node: id });
                }
                Ok(Cow::Borrowed(&self.nodes[id.index()].mixture))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use dmf_ratio::TargetRatio;

    fn two_fluid_graph() -> MixGraph {
        let target = TargetRatio::new(vec![1, 1]).unwrap();
        let mut b = GraphBuilder::new(2);
        let root = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        b.finish_tree(root);
        b.finish(&target).unwrap()
    }

    #[test]
    fn accessors_cover_single_mix() {
        let g = two_fluid_graph();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.tree_count(), 1);
        assert_eq!(g.fluid_count(), 2);
        let root = g.roots()[0];
        assert!(g.is_root(root));
        assert_eq!(g.node(root).level(), 1);
        assert_eq!(g.waste_of(root), 0);
        assert_eq!(g.depth(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn labels_follow_bfs_order() {
        // Depth-2 tree over 4 fluids: root mixes two leaf-pair mixes.
        let target = TargetRatio::new(vec![1, 1, 1, 1]).unwrap();
        let mut b = GraphBuilder::new(4);
        let a = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let c = b.mix(Operand::Input(FluidId(2)), Operand::Input(FluidId(3))).unwrap();
        let root = b.mix(Operand::Droplet(a), Operand::Droplet(c)).unwrap();
        b.finish_tree(root);
        let g = b.finish(&target).unwrap();
        let labels = g.labels();
        assert_eq!(labels[root.index()], "m1,1");
        assert_eq!(labels[a.index()], "m1,2");
        assert_eq!(labels[c.index()], "m1,3");
    }

    #[test]
    fn levels_use_structural_height() {
        let target = TargetRatio::new(vec![1, 1, 2]).unwrap();
        let mut b = GraphBuilder::new(3);
        let inner = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let root = b.mix(Operand::Droplet(inner), Operand::Input(FluidId(2))).unwrap();
        b.finish_tree(root);
        let g = b.finish(&target).unwrap();
        assert_eq!(g.node(inner).level(), 1);
        assert_eq!(g.node(root).level(), 2);
    }
}
