use crate::{GraphError, MixGraph, MixNode, NodeId, Operand};
use dmf_ratio::{Mixture, TargetRatio};
use std::borrow::Cow;

/// Incremental constructor for [`MixGraph`].
///
/// Vertices must be added operands-first, which makes the resulting graph
/// acyclic by construction. Component trees are declared by calling
/// [`GraphBuilder::finish_tree`] with each tree's root, in emission order.
///
/// # Examples
///
/// ```
/// use dmf_mixgraph::{GraphBuilder, Operand};
/// use dmf_ratio::{FluidId, TargetRatio};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 3:1 dilution of fluid 0 in fluid 1 (d = 2).
/// let target = TargetRatio::new(vec![3, 1])?;
/// let mut b = GraphBuilder::new(2);
/// let half = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1)))?;
/// let root = b.mix(Operand::Input(FluidId(0)), Operand::Droplet(half))?;
/// b.finish_tree(root);
/// let graph = b.finish(&target)?;
/// assert_eq!(graph.stats().mix_splits, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    fluid_count: usize,
    nodes: Vec<MixNode>,
    consumed: Vec<u8>,
    roots: Vec<NodeId>,
    current_tree: u32,
}

impl GraphBuilder {
    /// Starts a builder over a fluid set of `fluid_count` reagents.
    pub fn new(fluid_count: usize) -> Self {
        GraphBuilder {
            fluid_count,
            nodes: Vec::new(),
            consumed: Vec::new(),
            roots: Vec::new(),
            current_tree: 0,
        }
    }

    /// Number of vertices added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// How many of vertex `id`'s two droplets are already consumed.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this builder.
    pub fn consumed(&self, id: NodeId) -> u8 {
        self.consumed[id.index()]
    }

    /// The mixture a vertex produces.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this builder.
    pub fn mixture(&self, id: NodeId) -> &Mixture {
        &self.nodes[id.index()].mixture
    }

    /// Adds a (1:1) mix-split vertex over two operands and returns its id.
    ///
    /// The new vertex belongs to the component tree currently under
    /// construction. Consuming a droplet operand uses up one of the
    /// producer's two output droplets.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for an operand id that was not
    /// produced by this builder, [`GraphError::OverconsumedDroplet`] when a
    /// producer's two droplets are already spoken for, and
    /// [`GraphError::Ratio`] for fluid-set mismatches.
    pub fn mix(&mut self, left: Operand, right: Operand) -> Result<NodeId, GraphError> {
        let (left_mix, left_level) = self.operand_info(left)?;
        let (right_mix, right_level) = self.operand_info(right)?;
        // Check capacity before consuming anything so errors are atomic.
        for op in [left, right] {
            if let Operand::Droplet(id) = op {
                let budget = if left == right { 2 } else { 1 };
                if self.consumed[id.index()] + budget > 2 {
                    return Err(GraphError::OverconsumedDroplet { node: id });
                }
            }
        }
        let mixture = left_mix.mix(right_mix.as_ref()).map_err(GraphError::Ratio)?;
        for op in [left, right] {
            if let Operand::Droplet(id) = op {
                self.consumed[id.index()] += 1;
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(MixNode {
            left,
            right,
            mixture,
            level: left_level.max(right_level) + 1,
            tree: self.current_tree,
        });
        self.consumed.push(0);
        Ok(id)
    }

    /// Declares `root` as the root of the component tree currently under
    /// construction and starts the next tree.
    ///
    /// # Panics
    ///
    /// Panics if `root` was not produced by this builder.
    pub fn finish_tree(&mut self, root: NodeId) {
        assert!(root.index() < self.nodes.len(), "root must exist");
        self.roots.push(root);
        self.current_tree += 1;
    }

    /// Finalises the graph, validating droplet conservation and that every
    /// root realises `target`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NoTrees`] when no tree was finished,
    /// [`GraphError::RootConsumed`] / [`GraphError::DanglingNode`] /
    /// [`GraphError::WrongTarget`] for conservation violations.
    pub fn finish(self, target: &TargetRatio) -> Result<MixGraph, GraphError> {
        let targets = vec![target.to_mixture(); self.roots.len().max(1)];
        self.finish_with_targets(targets)
    }

    /// Finalises a *multi-target* graph: component tree `i` must realise
    /// `targets[i]`. This is the SDMT generalisation (one droplet pair per
    /// target over several targets) that the dilution-gradient literature
    /// needs; single-target callers should use [`GraphBuilder::finish`].
    ///
    /// # Errors
    ///
    /// As [`GraphBuilder::finish`]; additionally [`GraphError::NoTrees`]
    /// when `targets.len()` differs from the number of finished trees.
    pub fn finish_multi(self, targets: &[TargetRatio]) -> Result<MixGraph, GraphError> {
        self.finish_with_targets(targets.iter().map(TargetRatio::to_mixture).collect())
    }

    /// Finalises against already-canonicalised target mixtures, one per
    /// finished tree — the allocation-free core of [`GraphBuilder::finish`]
    /// / [`GraphBuilder::finish_multi`] for callers that hold [`Mixture`]s
    /// rather than [`TargetRatio`]s.
    ///
    /// # Errors
    ///
    /// As [`GraphBuilder::finish_multi`].
    pub fn finish_with_targets(self, targets: Vec<Mixture>) -> Result<MixGraph, GraphError> {
        if self.roots.is_empty() || targets.len() != self.roots.len() {
            return Err(GraphError::NoTrees);
        }
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for op in node.operands() {
                if let Operand::Droplet(src) = op {
                    consumers[src.index()].push(NodeId(i as u32));
                }
            }
        }
        let graph = MixGraph {
            fluid_count: self.fluid_count,
            nodes: self.nodes,
            roots: self.roots,
            consumers,
            targets,
        };
        graph.validate()?;
        Ok(graph)
    }

    /// Mixture and level of an operand: borrowed from the arena for
    /// droplet operands, constructed only for reservoir inputs.
    fn operand_info(&self, op: Operand) -> Result<(Cow<'_, Mixture>, u32), GraphError> {
        match op {
            Operand::Input(f) => {
                let m = Mixture::try_pure(f.0, self.fluid_count).map_err(GraphError::Ratio)?;
                Ok((Cow::Owned(m), 0))
            }
            Operand::Droplet(id) => {
                if id.index() >= self.nodes.len() {
                    return Err(GraphError::UnknownNode { node: id });
                }
                let node = &self.nodes[id.index()];
                Ok((Cow::Borrowed(&node.mixture), node.level))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_ratio::FluidId;

    #[test]
    fn rejects_unknown_operand() {
        let mut b = GraphBuilder::new(2);
        let err = b.mix(Operand::Droplet(NodeId(7)), Operand::Input(FluidId(0))).unwrap_err();
        assert_eq!(err, GraphError::UnknownNode { node: NodeId(7) });
    }

    #[test]
    fn rejects_third_consumption() {
        let mut b = GraphBuilder::new(2);
        let a = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        b.mix(Operand::Droplet(a), Operand::Input(FluidId(0))).unwrap();
        b.mix(Operand::Droplet(a), Operand::Input(FluidId(1))).unwrap();
        let err = b.mix(Operand::Droplet(a), Operand::Input(FluidId(0))).unwrap_err();
        assert_eq!(err, GraphError::OverconsumedDroplet { node: a });
    }

    #[test]
    fn self_mix_consumes_both_droplets() {
        // Mixing a node's two droplets with each other is physically valid
        // (it reproduces the same mixture) and must consume both outputs.
        let mut b = GraphBuilder::new(2);
        let a = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let s = b.mix(Operand::Droplet(a), Operand::Droplet(a)).unwrap();
        assert_eq!(b.consumed(a), 2);
        assert_eq!(b.mixture(s), b.mixture(a));
    }

    #[test]
    fn finish_rejects_dangling_nodes() {
        let target = TargetRatio::new(vec![1, 1]).unwrap();
        let mut b = GraphBuilder::new(2);
        let orphan = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let root = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        b.finish_tree(root);
        let err = b.finish(&target).unwrap_err();
        assert_eq!(err, GraphError::DanglingNode { node: orphan });
    }

    #[test]
    fn finish_rejects_wrong_target() {
        let target = TargetRatio::new(vec![3, 1]).unwrap();
        let mut b = GraphBuilder::new(2);
        let root = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        b.finish_tree(root);
        let err = b.finish(&target).unwrap_err();
        assert_eq!(err, GraphError::WrongTarget { node: root });
    }

    #[test]
    fn finish_requires_a_tree() {
        let target = TargetRatio::new(vec![1, 1]).unwrap();
        let b = GraphBuilder::new(2);
        assert_eq!(b.finish(&target).unwrap_err(), GraphError::NoTrees);
    }
}
