//! Mixing-tree and mixing-forest data structures for DMF sample preparation.
//!
//! A *mixing tree* (paper §2.1) is a binary task graph of (1:1) mix-split
//! operations whose leaves are pure-reagent input droplets and whose root is
//! the target mixture. A *mixing forest* (paper §4.1) generalises this to
//! several component trees whose waste droplets feed one another, so that a
//! stream of target droplets can be produced with minimal reactant usage.
//!
//! Both are represented by a single arena-backed DAG, [`MixGraph`]: every
//! vertex is a mix-split operation producing **two** identical unit droplets,
//! every operand is either a fresh reservoir input ([`Operand::Input`]) or a
//! droplet produced by another vertex ([`Operand::Droplet`]) — the latter
//! covers both ordinary tree edges and the cross-tree *waste-reuse* edges
//! that make the streaming engine efficient.
//!
//! The key quantities of the paper are all derivable here and exposed via
//! [`GraphStats`]: `Tms` (mix-split count), `W` (waste droplets), `I[]`/`I`
//! (per-fluid and total input droplets) and the target surplus.
//!
//! # Examples
//!
//! Build the two-fluid 1:1 mixture "by hand":
//!
//! ```
//! use dmf_mixgraph::{GraphBuilder, Operand};
//! use dmf_ratio::{FluidId, TargetRatio};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let target = TargetRatio::new(vec![1, 1])?;
//! let mut b = GraphBuilder::new(2);
//! let root = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1)))?;
//! b.finish_tree(root);
//! let graph = b.finish(&target)?;
//! let stats = graph.stats();
//! assert_eq!(stats.mix_splits, 1);
//! assert_eq!(stats.input_total, 2);
//! assert_eq!(stats.waste, 0); // both root droplets are targets
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
mod builder;
mod dot;
mod error;
mod error_model;
mod graph;
mod stats;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use error_model::CfInterval;
pub use graph::{MixGraph, MixNode, NodeId, Operand};
pub use stats::GraphStats;
