//! Worst-case CF error propagation under volumetric split errors.
//!
//! Real electrowetting splits are imperfect: the two daughter droplets of a
//! (1:1) mix-split have volumes `1 ± ε` rather than exactly 1. A later mix
//! of droplets with volumes `v₁, v₂` and CF vectors `c₁, c₂` produces
//! `(v₁c₁ + v₂c₂) / (v₁ + v₂)`, so volume errors skew concentrations as
//! they propagate up the tree. This module computes conservative
//! per-fluid CF intervals for every droplet by interval arithmetic: at
//! each mix the blend weight `w = v₁/(v₁+v₂)` ranges over
//! `[(1-ε)/2, (1+ε)/2]`, and the child intervals are combined at both
//! extremes.
//!
//! The analysis answers the operational question behind the paper's
//! accuracy level `d`: how large may the split error be before the
//! prepared mixture leaves the `1/2^d` tolerance band?

use crate::{MixGraph, Operand};

/// Per-fluid CF interval of one droplet under a given split-error bound.
#[derive(Debug, Clone, PartialEq)]
pub struct CfInterval {
    /// Lower CF bound per fluid.
    pub lo: Vec<f64>,
    /// Upper CF bound per fluid.
    pub hi: Vec<f64>,
}

impl CfInterval {
    /// Width of the widest per-fluid interval.
    pub fn max_width(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).fold(0.0, f64::max)
    }
}

impl MixGraph {
    /// Propagates a volumetric split error `epsilon ∈ [0, 1)` through the
    /// graph, returning one conservative [`CfInterval`] per vertex (indexed
    /// like the arena).
    ///
    /// With `epsilon = 0` every interval collapses to the exact CF vector.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `[0, 1)`.
    pub fn cf_error_bounds(&self, epsilon: f64) -> Vec<CfInterval> {
        assert!((0.0..1.0).contains(&epsilon), "split error must be in [0, 1)");
        let n_fluids = self.fluid_count();
        let w_lo = (1.0 - epsilon) / 2.0;
        let w_hi = (1.0 + epsilon) / 2.0;
        let mut out: Vec<CfInterval> = Vec::with_capacity(self.node_count());
        let pure = |fluid: usize| {
            let mut lo = vec![0.0; n_fluids];
            lo[fluid] = 1.0;
            let mut hi = vec![0.0; n_fluids];
            hi[fluid] = 1.0;
            CfInterval { lo, hi }
        };
        for (_, node) in self.iter() {
            // Droplet operands borrow the already-computed interval — no
            // per-edge CF-vector copies.
            let operand_interval = |op: Operand| -> std::borrow::Cow<'_, CfInterval> {
                match op {
                    Operand::Input(f) => std::borrow::Cow::Owned(pure(f.0)),
                    Operand::Droplet(src) => std::borrow::Cow::Borrowed(&out[src.index()]),
                }
            };
            let a = operand_interval(node.left());
            let b = operand_interval(node.right());
            let mut lo = vec![0.0; n_fluids];
            let mut hi = vec![0.0; n_fluids];
            for i in 0..n_fluids {
                let candidates_lo = [
                    w_lo * a.lo[i] + (1.0 - w_lo) * b.lo[i],
                    w_hi * a.lo[i] + (1.0 - w_hi) * b.lo[i],
                ];
                let candidates_hi = [
                    w_lo * a.hi[i] + (1.0 - w_lo) * b.hi[i],
                    w_hi * a.hi[i] + (1.0 - w_hi) * b.hi[i],
                ];
                lo[i] = candidates_lo.into_iter().fold(f64::INFINITY, f64::min).max(0.0);
                hi[i] = candidates_hi.into_iter().fold(f64::NEG_INFINITY, f64::max).min(1.0);
            }
            out.push(CfInterval { lo, hi });
        }
        out
    }

    /// Worst per-fluid CF deviation of any emitted target droplet from the
    /// nominal target, under split error `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `[0, 1)`.
    pub fn worst_target_error(&self, epsilon: f64) -> f64 {
        let bounds = self.cf_error_bounds(epsilon);
        let mut worst = 0.0f64;
        for &root in self.roots() {
            let node = self.node(root);
            let nominal = node.mixture();
            let denom = (1u64 << nominal.level()) as f64;
            let interval = &bounds[root.index()];
            for (i, &p) in nominal.parts().iter().enumerate() {
                let exact = p as f64 / denom;
                worst = worst.max((exact - interval.lo[i]).abs());
                worst = worst.max((interval.hi[i] - exact).abs());
            }
        }
        worst
    }

    /// The largest split error (searched to `tolerance`) for which every
    /// target stays within the accuracy band `1/2^d` of its nominal CF —
    /// an operational robustness margin for the prepared mixture.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive.
    pub fn split_error_margin(&self, tolerance: f64) -> f64 {
        assert!(tolerance > 0.0, "tolerance must be positive");
        let band = 1.0
            / (1u64
                << self.roots().iter().map(|&r| self.node(r).mixture().level()).max().unwrap_or(0))
                as f64;
        let (mut lo, mut hi) = (0.0f64, 0.999f64);
        while hi - lo > tolerance {
            let mid = (lo + hi) / 2.0;
            if self.worst_target_error(mid) <= band {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, Operand};
    use dmf_ratio::{FluidId, TargetRatio};

    fn pcr_like() -> crate::MixGraph {
        let target = TargetRatio::new(vec![3, 1]).unwrap();
        let mut b = GraphBuilder::new(2);
        let half = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let root = b.mix(Operand::Input(FluidId(0)), Operand::Droplet(half)).unwrap();
        b.finish_tree(root);
        b.finish(&target).unwrap()
    }

    #[test]
    fn zero_error_collapses_to_exact_cfs() {
        let g = pcr_like();
        let bounds = g.cf_error_bounds(0.0);
        let root = g.roots()[0];
        let interval = &bounds[root.index()];
        assert!((interval.lo[0] - 0.75).abs() < 1e-12);
        assert!((interval.hi[0] - 0.75).abs() < 1e-12);
        assert_eq!(g.worst_target_error(0.0), 0.0);
    }

    #[test]
    fn error_grows_monotonically_with_epsilon() {
        let g = pcr_like();
        let mut prev = 0.0;
        for eps in [0.01, 0.02, 0.05, 0.1, 0.2] {
            let err = g.worst_target_error(eps);
            assert!(err >= prev, "eps={eps}");
            assert!(err < 1.0);
            prev = err;
        }
    }

    #[test]
    fn intervals_stay_in_unit_range_and_contain_nominal() {
        // Four-fluid two-level tree.
        let mut b = GraphBuilder::new(7);
        let m1 = b.mix(Operand::Input(FluidId(0)), Operand::Input(FluidId(1))).unwrap();
        let m2 = b.mix(Operand::Input(FluidId(2)), Operand::Input(FluidId(3))).unwrap();
        let root = b.mix(Operand::Droplet(m1), Operand::Droplet(m2)).unwrap();
        b.finish_tree(root);
        let g = b.finish(&TargetRatio::new(vec![1, 1, 1, 1, 0, 0, 0]).unwrap()).unwrap();
        let bounds = g.cf_error_bounds(0.07);
        for (id, node) in g.iter() {
            let nominal = node.mixture();
            let denom = (1u64 << nominal.level()) as f64;
            let interval = &bounds[id.index()];
            for (i, &p) in nominal.parts().iter().enumerate() {
                let exact = p as f64 / denom;
                assert!(interval.lo[i] <= exact + 1e-12);
                assert!(interval.hi[i] >= exact - 1e-12);
                assert!((0.0..=1.0).contains(&interval.lo[i]));
                assert!((0.0..=1.0).contains(&interval.hi[i]));
            }
        }
    }

    #[test]
    fn margin_is_positive_and_bounded() {
        let g = pcr_like();
        let margin = g.split_error_margin(1e-3);
        assert!(margin > 0.0, "some split error is always tolerable");
        assert!(margin < 0.999);
        // At the margin the error fits the band; just beyond it must not.
        let band = 1.0 / 4.0; // root level 2
        assert!(g.worst_target_error(margin) <= band + 1e-9);
        assert!(g.worst_target_error((margin + 0.05).min(0.99)) > band - 1e-9 || margin > 0.9);
    }
}
