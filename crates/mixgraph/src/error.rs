use crate::NodeId;
use dmf_ratio::RatioError;
use std::error::Error;
use std::fmt;

/// Structural error raised while building or validating a [`crate::MixGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An operand refers to a vertex that does not exist (yet).
    UnknownNode {
        /// The unknown vertex.
        node: NodeId,
    },
    /// A vertex's two output droplets were consumed more than twice.
    OverconsumedDroplet {
        /// The over-consumed producer.
        node: NodeId,
    },
    /// A non-root vertex has no consumers at all, so it only produces waste.
    DanglingNode {
        /// The orphan vertex.
        node: NodeId,
    },
    /// A root vertex's droplets are consumed, but roots emit targets.
    RootConsumed {
        /// The consumed root.
        node: NodeId,
    },
    /// A root's mixture does not equal the declared target.
    WrongTarget {
        /// The offending root.
        node: NodeId,
    },
    /// A vertex's stored mixture disagrees with mixing its operands.
    MixtureMismatch {
        /// The inconsistent vertex.
        node: NodeId,
    },
    /// A tree was finished with no root, or `finish` was called with no trees.
    NoTrees,
    /// Underlying ratio arithmetic failed.
    Ratio(RatioError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { node } => {
                write!(f, "operand refers to unknown vertex {node}")
            }
            GraphError::OverconsumedDroplet { node } => {
                write!(f, "droplets of vertex {node} consumed more than twice")
            }
            GraphError::DanglingNode { node } => {
                write!(f, "non-root vertex {node} has no consumers")
            }
            GraphError::RootConsumed { node } => {
                write!(f, "root vertex {node} must not be consumed")
            }
            GraphError::WrongTarget { node } => {
                write!(f, "root vertex {node} does not produce the target mixture")
            }
            GraphError::MixtureMismatch { node } => {
                write!(f, "stored mixture of vertex {node} disagrees with its operands")
            }
            GraphError::NoTrees => write!(f, "graph has no component trees"),
            GraphError::Ratio(e) => write!(f, "ratio arithmetic failed: {e}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Ratio(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RatioError> for GraphError {
    fn from(e: RatioError) -> Self {
        GraphError::Ratio(e)
    }
}
