use dmf_mixalgo::MixAlgoError;
use dmf_mixgraph::GraphError;
use std::error::Error;
use std::fmt;

/// Error raised while constructing a mixing forest.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ForestError {
    /// A demand of zero target droplets was requested.
    ZeroDemand,
    /// The base template is a single pure fluid; nothing to mix.
    PureTarget,
    /// Replaying the base template failed.
    Algo(MixAlgoError),
    /// Structural validation of the assembled forest failed (indicates a
    /// template that does not realise the target).
    Graph(GraphError),
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::ZeroDemand => write!(f, "demand must be at least one target droplet"),
            ForestError::PureTarget => {
                write!(f, "target is a single pure fluid; no mixing forest exists")
            }
            ForestError::Algo(e) => write!(f, "template replay failed: {e}"),
            ForestError::Graph(e) => write!(f, "forest validation failed: {e}"),
        }
    }
}

impl Error for ForestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ForestError::Algo(e) => Some(e),
            ForestError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MixAlgoError> for ForestError {
    fn from(e: MixAlgoError) -> Self {
        match e {
            MixAlgoError::PureTarget => ForestError::PureTarget,
            other => ForestError::Algo(other),
        }
    }
}

impl From<GraphError> for ForestError {
    fn from(e: GraphError) -> Self {
        ForestError::Graph(e)
    }
}
