use dmf_mixgraph::{GraphStats, MixGraph};
use std::fmt;

/// Demand-aware summary of a mixing forest, pairing the structural
/// [`GraphStats`] with the requested demand.
///
/// # Examples
///
/// ```
/// use dmf_forest::{build_forest_report, ReusePolicy};
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let template = MinMix.build_template(&target)?;
/// let (_, report) = build_forest_report(&template, &target, 20, ReusePolicy::AcrossTrees)?;
/// assert_eq!(report.demand, 20);
/// assert_eq!(report.stats.waste, 5);
/// assert_eq!(report.surplus, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestReport {
    /// The requested number of target droplets `D`.
    pub demand: u64,
    /// Number of component trees `|F| = ⌈D/2⌉`.
    pub trees: usize,
    /// Target droplets actually emitted (`2 |F|`).
    pub targets_emitted: u64,
    /// Emitted targets beyond the demand (0 or 1).
    pub surplus: u64,
    /// Structural statistics (`Tms`, `W`, `I[]`, `I`, depth).
    pub stats: GraphStats,
}

impl ForestReport {
    /// Summarises `graph` against the demand it was built for.
    pub fn new(graph: &MixGraph, demand: u64) -> Self {
        let stats = graph.stats();
        let targets_emitted = stats.targets() as u64;
        ForestReport {
            demand,
            trees: stats.trees,
            targets_emitted,
            surplus: targets_emitted.saturating_sub(demand),
            stats,
        }
    }
}

impl fmt::Display for ForestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D={} {} surplus={}", self.demand, self.stats, self.surplus)
    }
}
