//! Mixing-forest construction — the core contribution of the DAC 2014
//! paper (§4.1).
//!
//! A *mixing forest* `F` answers the MDST problem ("multiple droplets of a
//! single target"): given a base mixing tree `T1` of depth `d` and a demand
//! `D > 2`, it contains `⌈D/2⌉` component trees `T1 … T|F|`, each emitting
//! two target droplets. Every component tree after the first is a *rebuild*
//! of `T1` in which any subtree whose droplet content is already available
//! as an earlier tree's waste droplet collapses to a reuse edge — the brown
//! nodes of the paper's figures. For `D = p·2^d` every intermediate droplet
//! is consumed and the waste `W` drops to **zero**.
//!
//! The numbers of the paper's worked example (PCR master mix
//! `2:1:1:1:1:1:9`, `d = 4`) are reproduced exactly and locked in as unit
//! tests:
//!
//! | demand | `|F|` | `Tms` | `W` | `I` | `I[]` |
//! |--------|-------|-------|-----|-----|-------|
//! | 16 (Fig. 1) | 8 | 19 | 0 | 16 | `[2,1,1,1,1,1,9]` |
//! | 20 (Fig. 2) | 10 | 27 | 5 | 25 | `[3,2,2,2,2,2,12]` |
//!
//! # Examples
//!
//! ```
//! use dmf_forest::{build_forest, ReusePolicy};
//! use dmf_mixalgo::{MinMix, MixingAlgorithm};
//! use dmf_ratio::TargetRatio;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
//! let template = MinMix.build_template(&target)?;
//! let forest = build_forest(&template, &target, 16, ReusePolicy::AcrossTrees)?;
//! let stats = forest.stats();
//! assert_eq!(stats.trees, 8);
//! assert_eq!(stats.mix_splits, 19);
//! assert_eq!(stats.waste, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
mod error;
mod multi;
mod report;

pub use error::ForestError;
pub use multi::build_multi_target_forest;
pub use report::ForestReport;

use dmf_mixalgo::{rebuild_tree, Template, WastePool};
use dmf_mixgraph::{GraphBuilder, MixGraph};
use dmf_ratio::TargetRatio;

/// When a component tree may consume another mix-split's spare droplet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReusePolicy {
    /// Paper-faithful: a tree only consumes waste droplets of *earlier*
    /// component trees, so each tree is a literal (partial) copy of the
    /// base tree.
    #[default]
    AcrossTrees,
    /// Ablation: spare droplets become available immediately, enabling
    /// additional sharing *within* a component tree when the base tree
    /// contains content-identical subtrees. Never worse in `Tms`/`I`.
    Eager,
}

impl std::fmt::Display for ReusePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReusePolicy::AcrossTrees => f.write_str("across-trees"),
            ReusePolicy::Eager => f.write_str("eager"),
        }
    }
}

/// Builds the mixing forest for `demand` target droplets of `target`, using
/// `template` as the base mixing tree `T1`.
///
/// The forest has `⌈demand/2⌉` component trees (each emits two targets); for
/// odd demands one droplet is surplus, reported by [`ForestReport`].
///
/// # Errors
///
/// Returns [`ForestError::ZeroDemand`] for `demand == 0`,
/// [`ForestError::PureTarget`] when `template` is a bare leaf, and
/// propagates structural failures (which would indicate a template that does
/// not realise `target`).
pub fn build_forest(
    template: &Template,
    target: &TargetRatio,
    demand: u64,
    policy: ReusePolicy,
) -> Result<MixGraph, ForestError> {
    let _span = dmf_obs::span!("forest_build");
    if demand == 0 {
        return Err(ForestError::ZeroDemand);
    }
    if template.is_leaf() {
        return Err(ForestError::PureTarget);
    }
    let trees = demand.div_ceil(2);
    let eager = policy == ReusePolicy::Eager;
    let mut builder = GraphBuilder::new(template.fluid_count());
    let mut pool = WastePool::new();
    for _ in 0..trees {
        let root = rebuild_tree(template, &mut builder, &mut pool, eager)?;
        builder.finish_tree(root);
        if !eager {
            pool.commit();
        }
    }
    builder.finish(target).map_err(ForestError::Graph)
}

/// Convenience wrapper: builds the forest and its [`ForestReport`] in one
/// call.
///
/// # Errors
///
/// Same conditions as [`build_forest`].
pub fn build_forest_report(
    template: &Template,
    target: &TargetRatio,
    demand: u64,
    policy: ReusePolicy,
) -> Result<(MixGraph, ForestReport), ForestError> {
    let graph = build_forest(template, target, demand, policy)?;
    let report = ForestReport::new(&graph, demand);
    Ok((graph, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_mixalgo::{MinMix, MixingAlgorithm, Rma};

    fn pcr_d4() -> (Template, TargetRatio) {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = MinMix.build_template(&target).unwrap();
        (template, target)
    }

    #[test]
    fn fig1_demand_16_oracle() {
        let (template, target) = pcr_d4();
        let forest = build_forest(&template, &target, 16, ReusePolicy::AcrossTrees).unwrap();
        let s = forest.stats();
        assert_eq!(s.trees, 8, "|F|");
        assert_eq!(s.mix_splits, 19, "Tms");
        assert_eq!(s.waste, 0, "W");
        assert_eq!(s.input_total, 16, "I");
        assert_eq!(s.inputs, vec![2, 1, 1, 1, 1, 1, 9], "I[]");
        s.assert_conservation();
    }

    #[test]
    fn fig2_demand_20_oracle() {
        let (template, target) = pcr_d4();
        let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees).unwrap();
        let s = forest.stats();
        assert_eq!(s.trees, 10, "|F|");
        assert_eq!(s.mix_splits, 27, "Tms");
        assert_eq!(s.waste, 5, "W");
        assert_eq!(s.input_total, 25, "I");
        assert_eq!(s.inputs, vec![3, 2, 2, 2, 2, 2, 12], "I[]");
        s.assert_conservation();
    }

    #[test]
    fn demand_two_is_just_the_base_tree() {
        let (template, target) = pcr_d4();
        let forest = build_forest(&template, &target, 2, ReusePolicy::AcrossTrees).unwrap();
        let s = forest.stats();
        assert_eq!(s.trees, 1);
        assert_eq!(s.mix_splits, 7);
        assert_eq!(s.waste, 6);
        assert_eq!(s.input_total, 8);
    }

    #[test]
    fn full_cycle_demand_has_zero_waste_and_repeats() {
        let (template, target) = pcr_d4();
        // D = p * 2^d keeps W = 0 and scales Tms / I linearly (paper §4.1).
        let base = build_forest(&template, &target, 16, ReusePolicy::AcrossTrees).unwrap().stats();
        for p in 2..=4u64 {
            let s =
                build_forest(&template, &target, 16 * p, ReusePolicy::AcrossTrees).unwrap().stats();
            assert_eq!(s.waste, 0, "p={p}");
            assert_eq!(s.mix_splits, base.mix_splits * p as usize);
            assert_eq!(s.input_total, base.input_total * p);
        }
    }

    #[test]
    fn odd_demand_rounds_up_to_tree_pairs() {
        let (template, target) = pcr_d4();
        let (_, report) =
            build_forest_report(&template, &target, 5, ReusePolicy::AcrossTrees).unwrap();
        assert_eq!(report.trees, 3);
        assert_eq!(report.targets_emitted, 6);
        assert_eq!(report.surplus, 1);
    }

    #[test]
    fn zero_demand_rejected() {
        let (template, target) = pcr_d4();
        assert!(matches!(
            build_forest(&template, &target, 0, ReusePolicy::AcrossTrees),
            Err(ForestError::ZeroDemand)
        ));
    }

    #[test]
    fn rma_seeded_forest_is_valid_and_waste_free_at_full_cycle() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let template = Rma.build_template(&target).unwrap();
        let forest = build_forest(&template, &target, 16, ReusePolicy::AcrossTrees).unwrap();
        let s = forest.stats();
        assert_eq!(s.waste, 0);
        assert_eq!(s.input_total, 16);
        s.assert_conservation();
    }

    #[test]
    fn eager_policy_never_does_worse() {
        for parts in [vec![3, 3, 2], vec![2, 1, 1, 1, 1, 1, 9], vec![5, 11]] {
            let target = TargetRatio::new(parts).unwrap();
            let template = MinMix.build_template(&target).unwrap();
            for demand in [4u64, 10, 16, 20] {
                let across = build_forest(&template, &target, demand, ReusePolicy::AcrossTrees)
                    .unwrap()
                    .stats();
                let eager =
                    build_forest(&template, &target, demand, ReusePolicy::Eager).unwrap().stats();
                assert!(eager.mix_splits <= across.mix_splits);
                assert!(eager.input_total <= across.input_total);
            }
        }
    }

    #[test]
    fn reuse_edges_cross_trees_under_paper_policy() {
        let (template, target) = pcr_d4();
        let forest = build_forest(&template, &target, 16, ReusePolicy::AcrossTrees).unwrap();
        let mut cross_tree_edges = 0;
        for (_, node) in forest.iter() {
            for op in node.operands() {
                if let dmf_mixgraph::Operand::Droplet(src) = op {
                    if forest.node(src).tree() != node.tree() {
                        cross_tree_edges += 1;
                    }
                }
            }
        }
        // T1 produces 6 waste droplets; all are reused downstream, plus the
        // later trees' own spares: every one of the 12 non-T1 reuse slots.
        assert!(cross_tree_edges >= 6, "got {cross_tree_edges}");
    }
}
