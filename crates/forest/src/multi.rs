use crate::{ForestError, ReusePolicy};
use dmf_mixalgo::{rebuild_tree, Template, WastePool};
use dmf_mixgraph::{GraphBuilder, MixGraph};
use dmf_ratio::TargetRatio;

/// Builds a *multi-target* forest: one component tree (two droplets) per
/// entry of `targets`, with waste droplets shared across all of them.
///
/// This extends the paper's MDST engine toward the SDMT objective (one
/// droplet per target over multiple targets, Table 1): targets over the
/// same fluid set frequently share intermediate mixtures — most of a PCR
/// dilution series, for example — and the shared pool turns those overlaps
/// into reuse edges exactly like the single-target forest does.
///
/// Targets are processed in the given order. With
/// [`ReusePolicy::AcrossTrees`] a tree only consumes earlier trees' waste
/// (paper-faithful); [`ReusePolicy::Eager`] also shares within a tree.
///
/// # Errors
///
/// Returns [`ForestError::ZeroDemand`] for an empty target list,
/// [`ForestError::PureTarget`] if any template is a bare leaf, and
/// propagates structural failures.
///
/// # Examples
///
/// ```
/// use dmf_forest::{build_multi_target_forest, ReusePolicy};
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two related 3-fluid targets.
/// let a = TargetRatio::new(vec![2, 1, 1])?;
/// let b = TargetRatio::new(vec![1, 2, 1])?;
/// let pairs = vec![
///     (MinMix.build_template(&a)?, a),
///     (MinMix.build_template(&b)?, b),
/// ];
/// let forest = build_multi_target_forest(&pairs, ReusePolicy::AcrossTrees)?;
/// assert_eq!(forest.tree_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn build_multi_target_forest(
    targets: &[(Template, TargetRatio)],
    policy: ReusePolicy,
) -> Result<MixGraph, ForestError> {
    let Some((first, _)) = targets.first() else {
        return Err(ForestError::ZeroDemand);
    };
    let eager = policy == ReusePolicy::Eager;
    let mut builder = GraphBuilder::new(first.fluid_count());
    let mut pool = WastePool::new();
    for (template, _) in targets {
        if template.is_leaf() {
            return Err(ForestError::PureTarget);
        }
        let root = rebuild_tree(template, &mut builder, &mut pool, eager)?;
        builder.finish_tree(root);
        if !eager {
            pool.commit();
        }
    }
    let mixtures = targets.iter().map(|(_, t)| t.to_mixture()).collect();
    builder.finish_with_targets(mixtures).map_err(ForestError::Graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_mixalgo::{MinMix, MixingAlgorithm};

    fn pair(parts: Vec<u64>) -> (Template, TargetRatio) {
        let target = TargetRatio::new(parts).unwrap();
        (MinMix.build_template(&target).unwrap(), target)
    }

    #[test]
    fn shares_waste_across_related_targets() {
        // A PCR-like series: all targets share the x1/x2 backbone.
        let pairs = vec![pair(vec![2, 1, 1, 4]), pair(vec![1, 2, 1, 4]), pair(vec![1, 1, 2, 4])];
        let forest = build_multi_target_forest(&pairs, ReusePolicy::AcrossTrees).unwrap();
        forest.validate().unwrap();
        let shared = forest.stats();
        let separate: u64 = pairs.iter().map(|(t, _)| t.leaf_counts().iter().sum::<u64>()).sum();
        assert!(shared.input_total <= separate);
        shared.assert_conservation();
        assert_eq!(forest.targets().len(), 3);
    }

    #[test]
    fn identical_targets_degenerate_to_mdst() {
        // Three copies of one target = MDST with D = 6.
        let (template, target) = pair(vec![2, 1, 1, 1, 1, 1, 9]);
        let pairs = vec![
            (template.clone(), target.clone()),
            (template.clone(), target.clone()),
            (template.clone(), target.clone()),
        ];
        let multi = build_multi_target_forest(&pairs, ReusePolicy::AcrossTrees).unwrap();
        let mdst = crate::build_forest(&template, &target, 6, ReusePolicy::AcrossTrees).unwrap();
        assert_eq!(multi.stats().mix_splits, mdst.stats().mix_splits);
        assert_eq!(multi.stats().input_total, mdst.stats().input_total);
    }

    #[test]
    fn empty_target_list_is_rejected() {
        assert!(matches!(
            build_multi_target_forest(&[], ReusePolicy::AcrossTrees),
            Err(ForestError::ZeroDemand)
        ));
    }

    #[test]
    fn each_root_realises_its_own_target() {
        let pairs = vec![pair(vec![3, 1]), pair(vec![1, 3]), pair(vec![1, 1])];
        let forest = build_multi_target_forest(&pairs, ReusePolicy::Eager).unwrap();
        for (i, (_, target)) in pairs.iter().enumerate() {
            let root = forest.roots()[i];
            assert_eq!(forest.node(root).mixture(), &target.to_mixture());
        }
    }
}
