//! Integration oracles taken directly from the paper's figures and tables.
//!
//! These values are hard-coded from the published text; a failure here
//! means the reproduction has drifted from the paper.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmfstream::engine::{improvement_over_baseline, repeated, EngineConfig, StreamingEngine};
use dmfstream::forest::{build_forest, ReusePolicy};
use dmfstream::mixalgo::{BaseAlgorithm, MinMix, MixingAlgorithm};
use dmfstream::ratio::TargetRatio;
use dmfstream::sched::{mixer_lower_bound, oms_schedule, srs_schedule};

fn pcr_d4() -> TargetRatio {
    TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("paper ratio")
}

/// Fig. 1: mixing forest for D = 16 — |F| = 8, Tms = 19, W = 0, I = 16,
/// I[] = [2,1,1,1,1,1,9].
#[test]
fn fig1_forest_demand_16() {
    let target = pcr_d4();
    let template = MinMix.build_template(&target).unwrap();
    let forest = build_forest(&template, &target, 16, ReusePolicy::AcrossTrees).unwrap();
    let s = forest.stats();
    assert_eq!((s.trees, s.mix_splits, s.waste, s.input_total), (8, 19, 0, 16));
    assert_eq!(s.inputs, vec![2, 1, 1, 1, 1, 1, 9]);
}

/// Fig. 2: mixing forest for D = 20 — |F| = 10, Tms = 27, W = 5, I = 25,
/// I[] = [3,2,2,2,2,2,12].
#[test]
fn fig2_forest_demand_20() {
    let target = pcr_d4();
    let template = MinMix.build_template(&target).unwrap();
    let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees).unwrap();
    let s = forest.stats();
    assert_eq!((s.trees, s.mix_splits, s.waste, s.input_total), (10, 27, 5, 25));
    assert_eq!(s.inputs, vec![3, 2, 2, 2, 2, 2, 12]);
}

/// Figs. 3–4: SRS on three mixers completes the D = 20 forest in Tc = 11
/// cycles using q = 5 storage units.
#[test]
fn fig3_fig4_srs_schedule() {
    let target = pcr_d4();
    let template = MinMix.build_template(&target).unwrap();
    let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees).unwrap();
    let schedule = srs_schedule(&forest, 3).unwrap();
    schedule.validate(&forest).unwrap();
    assert_eq!(schedule.makespan(), 11);
    assert_eq!(schedule.storage(&forest).peak, 5);
}

/// §5: the PCR MinMix base tree needs Mlb = 3 mixers and finishes in its
/// critical-path time d = 4 with them.
#[test]
fn section5_mlb_is_three() {
    let tree = MinMix.build_graph(&pcr_d4()).unwrap();
    assert_eq!(mixer_lower_bound(&tree).unwrap(), 3);
    assert_eq!(oms_schedule(&tree, 3).unwrap().makespan(), 4);
}

/// Abstract + Table 3: ~72.5% faster on the PCR stream. Our engine hits
/// exactly 72.5% on the D = 20 PCR run and comparable reactant savings.
#[test]
fn headline_improvement_on_pcr() {
    let target = pcr_d4();
    let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 20).unwrap();
    let baseline = repeated(BaseAlgorithm::MinMix, &target, 20, plan.mixers).unwrap();
    let imp = improvement_over_baseline(&plan, &baseline);
    assert!((imp.time_pct - 72.5).abs() < 0.1, "ΔTc = {:.2}%", imp.time_pct);
    assert!(imp.input_pct > 60.0, "ΔI = {:.2}%", imp.input_pct);
}

/// Table 4, D = 32, d = 4 rows: q' = 3 needs three passes with 17 total
/// cycles and 7 waste droplets; q' ∈ {5, 7} fits one pass (14 cycles,
/// zero waste).
#[test]
fn table4_d4_rows() {
    let target = pcr_d4();
    let q3 = StreamingEngine::new(EngineConfig::default().with_storage_limit(3))
        .plan(&target, 32)
        .unwrap();
    assert_eq!((q3.pass_count(), q3.total_cycles, q3.total_waste), (3, 17, 7));
    for limit in [5, 7] {
        let plan = StreamingEngine::new(EngineConfig::default().with_storage_limit(limit))
            .plan(&target, 32)
            .unwrap();
        assert_eq!((plan.pass_count(), plan.total_cycles, plan.total_waste), (1, 14, 0));
    }
}

/// Table 4, D = 2 row: a single base-tree pass for any budget and any
/// accuracy — 4 cycles and 6 waste droplets at d = 4.
#[test]
fn table4_demand_2_row() {
    let target = pcr_d4();
    for limit in [3, 5, 7] {
        let plan = StreamingEngine::new(EngineConfig::default().with_storage_limit(limit))
            .plan(&target, 2)
            .unwrap();
        assert_eq!((plan.pass_count(), plan.total_cycles, plan.total_waste), (1, 4, 6));
    }
}
