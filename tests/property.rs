//! Property-based invariants over random target ratios, demands and mixer
//! counts: droplet conservation, schedule validity, storage accounting and
//! approximation error bounds.

use dmfstream::forest::{build_forest, ReusePolicy};
use dmfstream::mixalgo::BaseAlgorithm;
use dmfstream::ratio::TargetRatio;
use dmfstream::sched::{mms_schedule, oms_schedule, srs_schedule};
use proptest::prelude::*;

/// A random valid multi-fluid target ratio with sum `2^d`, `d <= 6`.
fn arb_target() -> impl Strategy<Value = TargetRatio> {
    (2u32..=6, 2usize..=8).prop_flat_map(|(d, n)| {
        let total = 1u64 << d;
        // Random cut points turn into a composition of `total` into n parts.
        proptest::collection::vec(1..=total - 1, n - 1).prop_map(move |mut cuts| {
            cuts.sort_unstable();
            cuts.dedup();
            let mut parts = Vec::with_capacity(cuts.len() + 1);
            let mut prev = 0;
            for c in cuts {
                parts.push(c - prev);
                prev = c;
            }
            parts.push(total - prev);
            TargetRatio::new(parts).expect("composition sums to 2^d")
        })
    })
    .prop_filter("need at least two active fluids", |t| t.active_fluid_count() >= 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mixture arithmetic: every base algorithm realises the target and
    /// conserves droplets.
    #[test]
    fn base_trees_realise_the_target(target in arb_target()) {
        for algorithm in BaseAlgorithm::ALL {
            let graph = algorithm.algorithm().build_graph(&target).unwrap();
            graph.validate().unwrap();
            let stats = graph.stats();
            stats.assert_conservation();
            // The depth-d guarantee is a property of the *tree* algorithms;
            // subgraph sharing (MTCS/RSM) may park a reused droplet at a
            // structurally deeper producer without changing its content.
            if !algorithm.algorithm().shares_subgraphs() {
                prop_assert!(stats.depth <= target.accuracy());
            }
        }
    }

    /// Forest construction conserves droplets for any demand and both
    /// reuse policies, and never uses more reactant than the repeated
    /// baseline would.
    #[test]
    fn forests_conserve_droplets(target in arb_target(), demand in 1u64..40) {
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
        let base_inputs = template.leaf_counts().iter().sum::<u64>();
        for policy in [ReusePolicy::AcrossTrees, ReusePolicy::Eager] {
            let forest = build_forest(&template, &target, demand, policy).unwrap();
            forest.validate().unwrap();
            let stats = forest.stats();
            stats.assert_conservation();
            prop_assert_eq!(stats.trees as u64, demand.div_ceil(2));
            let repeated_inputs = demand.div_ceil(2) * base_inputs;
            prop_assert!(stats.input_total <= repeated_inputs);
        }
    }

    /// Full-cycle demands leave zero waste (paper §4.1).
    #[test]
    fn full_cycle_demand_is_waste_free(target in arb_target(), p in 1u64..4) {
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
        let d = template.depth();
        let demand = p << d;
        let forest = build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap();
        prop_assert_eq!(forest.stats().waste, 0);
    }

    /// Every scheduler yields a valid schedule whose makespan respects the
    /// work and critical-path lower bounds.
    #[test]
    fn schedules_are_valid_and_bounded(
        target in arb_target(),
        demand in 2u64..24,
        mixers in 1usize..6,
    ) {
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
        let forest = build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap();
        let lb = (forest.node_count() as u32).div_ceil(mixers as u32).max(forest.depth());
        for schedule in [
            mms_schedule(&forest, mixers).unwrap(),
            srs_schedule(&forest, mixers).unwrap(),
            oms_schedule(&forest, mixers).unwrap(),
        ] {
            schedule.validate(&forest).unwrap();
            prop_assert!(schedule.makespan() >= lb);
            prop_assert!(schedule.makespan() as usize <= forest.node_count().max(forest.depth() as usize));
            // Storage occupancy is internally consistent: the profile
            // length equals the makespan and the peak is its maximum.
            let storage = schedule.storage(&forest);
            prop_assert_eq!(storage.occupancy.len(), schedule.makespan() as usize);
            prop_assert_eq!(
                storage.peak as u32,
                storage.occupancy.iter().copied().max().unwrap_or(0)
            );
        }
    }

    /// OMS with unlimited mixers always reaches the critical path on trees.
    #[test]
    fn oms_reaches_critical_path(target in arb_target()) {
        let tree = BaseAlgorithm::MinMix.algorithm().build_graph(&target).unwrap();
        let schedule = oms_schedule(&tree, tree.node_count().max(1)).unwrap();
        prop_assert_eq!(schedule.makespan(), tree.depth());
    }

    /// Grid approximation keeps the paper's error bound `1/2^d` per fluid.
    #[test]
    fn approximation_error_bound(
        weights in proptest::collection::vec(0.01f64..100.0, 2..10),
        d in 3u32..10,
    ) {
        let target = TargetRatio::approximate(&weights, d).unwrap();
        let bound = 1.0 / (1u64 << d) as f64 + 1e-12;
        prop_assert!(target.max_cf_error(&weights) <= bound);
    }

    /// Mixing is commutative at the content level.
    #[test]
    fn mixing_is_commutative(a_parts in 1u64..15, b_parts in 1u64..15) {
        use dmfstream::ratio::Mixture;
        let a = Mixture::new(4, vec![a_parts, 16 - a_parts]).unwrap();
        let b = Mixture::new(4, vec![b_parts, 16 - b_parts]).unwrap();
        prop_assert_eq!(a.mix(&b).unwrap(), b.mix(&a).unwrap());
    }
}
