//! Randomized invariants over random target ratios, demands and mixer
//! counts: droplet conservation, schedule validity, storage accounting and
//! approximation error bounds.
//!
//! Each test draws its cases from a fixed-seed [`dmf_rng::StdRng`], so the
//! suite is deterministic and self-contained (no network-fetched property
//! testing framework), while still sweeping a broad random sample of the
//! input space on every run.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_rng::{Rng, SeedableRng, StdRng};
use dmfstream::forest::{build_forest, ReusePolicy};
use dmfstream::mixalgo::BaseAlgorithm;
use dmfstream::ratio::TargetRatio;
use dmfstream::sched::{mms_schedule, oms_schedule, srs_schedule};

/// A random valid multi-fluid target ratio with sum `2^d`, `d <= 6`,
/// built as a composition of `2^d` into `n` parts from random cut points.
fn random_target(rng: &mut StdRng) -> TargetRatio {
    loop {
        let d = rng.gen_range(2u32..=6);
        let n = rng.gen_range(2usize..=8);
        let total = 1u64 << d;
        let mut cuts: Vec<u64> = (0..n - 1).map(|_| rng.gen_range(1..=total - 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut parts = Vec::with_capacity(cuts.len() + 1);
        let mut prev = 0;
        for c in cuts {
            parts.push(c - prev);
            prev = c;
        }
        parts.push(total - prev);
        let target = TargetRatio::new(parts).expect("composition sums to 2^d");
        if target.active_fluid_count() >= 2 {
            return target;
        }
    }
}

/// Mixture arithmetic: every base algorithm realises the target and
/// conserves droplets.
#[test]
fn base_trees_realise_the_target() {
    let mut rng = StdRng::seed_from_u64(0xB45E);
    for _ in 0..64 {
        let target = random_target(&mut rng);
        for algorithm in BaseAlgorithm::ALL {
            let graph = algorithm.algorithm().build_graph(&target).unwrap();
            graph.validate().unwrap();
            let stats = graph.stats();
            stats.assert_conservation();
            // The depth-d guarantee is a property of the *tree* algorithms;
            // subgraph sharing (MTCS/RSM) may park a reused droplet at a
            // structurally deeper producer without changing its content.
            if !algorithm.algorithm().shares_subgraphs() {
                assert!(stats.depth <= target.accuracy(), "target {target:?}");
            }
        }
    }
}

/// Forest construction conserves droplets for any demand and both
/// reuse policies, and never uses more reactant than the repeated
/// baseline would.
#[test]
fn forests_conserve_droplets() {
    let mut rng = StdRng::seed_from_u64(0xF03E);
    for _ in 0..64 {
        let target = random_target(&mut rng);
        let demand = rng.gen_range(1u64..40);
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
        let base_inputs = template.leaf_counts().iter().sum::<u64>();
        for policy in [ReusePolicy::AcrossTrees, ReusePolicy::Eager] {
            let forest = build_forest(&template, &target, demand, policy).unwrap();
            forest.validate().unwrap();
            let stats = forest.stats();
            stats.assert_conservation();
            assert_eq!(stats.trees as u64, demand.div_ceil(2));
            let repeated_inputs = demand.div_ceil(2) * base_inputs;
            assert!(stats.input_total <= repeated_inputs, "target {target:?} demand {demand}");
        }
    }
}

/// Full-cycle demands leave zero waste (paper §4.1).
#[test]
fn full_cycle_demand_is_waste_free() {
    let mut rng = StdRng::seed_from_u64(0xFC1C);
    for _ in 0..64 {
        let target = random_target(&mut rng);
        let p = rng.gen_range(1u64..4);
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
        let d = template.depth();
        let demand = p << d;
        let forest = build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap();
        assert_eq!(forest.stats().waste, 0, "target {target:?} demand {demand}");
    }
}

/// Every scheduler yields a valid schedule whose makespan respects the
/// work and critical-path lower bounds.
#[test]
fn schedules_are_valid_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x5C4E);
    for _ in 0..64 {
        let target = random_target(&mut rng);
        let demand = rng.gen_range(2u64..24);
        let mixers = rng.gen_range(1usize..6);
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
        let forest = build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap();
        let lb = (forest.node_count() as u32).div_ceil(mixers as u32).max(forest.depth());
        for schedule in [
            mms_schedule(&forest, mixers).unwrap(),
            srs_schedule(&forest, mixers).unwrap(),
            oms_schedule(&forest, mixers).unwrap(),
        ] {
            schedule.validate(&forest).unwrap();
            assert!(schedule.makespan() >= lb);
            assert!(
                schedule.makespan() as usize <= forest.node_count().max(forest.depth() as usize)
            );
            // Storage occupancy is internally consistent: the profile
            // length equals the makespan and the peak is its maximum.
            let storage = schedule.storage(&forest);
            assert_eq!(storage.occupancy.len(), schedule.makespan() as usize);
            assert_eq!(storage.peak as u32, storage.occupancy.iter().copied().max().unwrap_or(0));
        }
    }
}

/// OMS with unlimited mixers always reaches the critical path on trees.
#[test]
fn oms_reaches_critical_path() {
    let mut rng = StdRng::seed_from_u64(0x0117);
    for _ in 0..64 {
        let target = random_target(&mut rng);
        let tree = BaseAlgorithm::MinMix.algorithm().build_graph(&target).unwrap();
        let schedule = oms_schedule(&tree, tree.node_count().max(1)).unwrap();
        assert_eq!(schedule.makespan(), tree.depth(), "target {target:?}");
    }
}

/// Grid approximation keeps the paper's error bound `1/2^d` per fluid.
#[test]
fn approximation_error_bound() {
    let mut rng = StdRng::seed_from_u64(0xE880);
    for _ in 0..64 {
        let n = rng.gen_range(2usize..10);
        let weights: Vec<f64> = (0..n).map(|_| 0.01 + rng.gen::<f64>() * 99.99).collect();
        let d = rng.gen_range(3u32..10);
        let target = TargetRatio::approximate(&weights, d).unwrap();
        let bound = 1.0 / (1u64 << d) as f64 + 1e-12;
        assert!(target.max_cf_error(&weights) <= bound, "weights {weights:?} d {d}");
    }
}

/// Mixing is commutative at the content level.
#[test]
fn mixing_is_commutative() {
    use dmfstream::ratio::Mixture;
    for a_parts in 1u64..15 {
        for b_parts in 1u64..15 {
            let a = Mixture::new(4, vec![a_parts, 16 - a_parts]).unwrap();
            let b = Mixture::new(4, vec![b_parts, 16 - b_parts]).unwrap();
            assert_eq!(a.mix(&b).unwrap(), b.mix(&a).unwrap());
        }
    }
}
