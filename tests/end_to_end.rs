//! Cross-crate integration: every protocol workload, every base algorithm
//! and both schedulers, planned, (where sized to fit) realized onto chips,
//! and simulated.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmfstream::chip::presets::streaming_chip;
use dmfstream::engine::{realize_pass, EngineConfig, StreamingEngine};
use dmfstream::mixalgo::BaseAlgorithm;
use dmfstream::sched::SchedulerKind;
use dmfstream::sim::Simulator;
use dmfstream::workloads::protocols;

#[test]
fn all_protocols_all_algorithms_all_schedulers_plan_cleanly() {
    for protocol in protocols::table2_examples() {
        for algorithm in BaseAlgorithm::ALL {
            for scheduler in SchedulerKind::ALL {
                let config =
                    EngineConfig::default().with_algorithm(algorithm).with_scheduler(scheduler);
                let engine = StreamingEngine::new(config);
                let plan = engine
                    .plan(&protocol.ratio, 32)
                    .unwrap_or_else(|e| panic!("{} {} {}: {e}", protocol.id, algorithm, scheduler));
                assert_eq!(plan.pass_count(), 1);
                // Droplet conservation: I = targets + W, targets >= demand.
                let targets = plan.total_inputs - plan.total_waste;
                assert!(targets >= 32, "{}: {targets} targets", protocol.id);
                // Every pass's schedule is structurally valid.
                for pass in &plan.passes {
                    pass.schedule.validate(&pass.forest).unwrap();
                    pass.forest.stats().assert_conservation();
                }
            }
        }
    }
}

#[test]
fn streaming_always_beats_its_repeated_baseline_on_reactant() {
    use dmfstream::engine::repeated;
    for protocol in protocols::table2_examples() {
        for algorithm in BaseAlgorithm::ALL {
            let config = EngineConfig::default().with_algorithm(algorithm);
            let engine = StreamingEngine::new(config);
            let plan = engine.plan(&protocol.ratio, 32).unwrap();
            let baseline = repeated(algorithm, &protocol.ratio, 32, plan.mixers).unwrap();
            assert!(
                plan.total_inputs <= baseline.total_inputs,
                "{} {}: I {} vs Ir {}",
                protocol.id,
                algorithm,
                plan.total_inputs,
                baseline.total_inputs
            );
            assert!(
                plan.total_cycles <= baseline.total_cycles,
                "{} {}: Tc {} vs Tr {}",
                protocol.id,
                algorithm,
                plan.total_cycles,
                baseline.total_cycles
            );
        }
    }
}

#[test]
fn three_fluid_protocol_realizes_and_simulates() {
    // Ex.2 (phenol/chloroform/isoamylalcohol) end to end on an
    // appropriately sized chip.
    let protocol = protocols::one_step_miniprep();
    let engine = StreamingEngine::new(EngineConfig::default());
    let plan = engine.plan(&protocol.ratio, 8).unwrap();
    let chip = streaming_chip(protocol.ratio.fluid_count(), plan.mixers, plan.storage_peak.max(1))
        .unwrap();
    let mut emitted = 0;
    for pass in &plan.passes {
        let program = realize_pass(pass, &chip).unwrap();
        let report = Simulator::new(&chip).run(&program).unwrap();
        emitted += report.emitted;
        assert_eq!(report.mix_splits as usize, pass.forest.node_count());
        assert_eq!(report.storage_peak, pass.storage_units());
    }
    assert!(emitted >= 8);
}

#[test]
fn pcr_at_higher_accuracy_realizes_with_enough_storage() {
    let ratio = protocols::pcr_master_mix_256().ratio;
    let engine = StreamingEngine::new(EngineConfig::default());
    let plan = engine.plan(&ratio, 4).unwrap();
    let chip = streaming_chip(7, plan.mixers, plan.storage_peak.max(1)).unwrap();
    for pass in &plan.passes {
        let program = realize_pass(pass, &chip).unwrap();
        let report = Simulator::new(&chip).run(&program).unwrap();
        assert_eq!(report.emitted, 2 * pass.forest.tree_count() as u64);
    }
}

#[test]
fn dilution_is_a_special_case_of_the_engine() {
    // The dilution-engine use case (Roy et al., IET-CDT 2013): N = 2.
    let target = dmfstream::mixalgo::dilution_ratio(5, 4).unwrap();
    let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 16).unwrap();
    assert!(plan.total_inputs < 16 * 4, "streaming reuses dilution waste");
    let targets = plan.total_inputs - plan.total_waste;
    assert!(targets >= 16);
}
