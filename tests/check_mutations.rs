//! Mutation tests for the `dmf-check` static verifier.
//!
//! Each test takes a **known-good** artifact (a real forest, schedule,
//! placement or route set), applies one targeted mutation through the
//! unvalidated constructors (`MixGraph::from_raw_parts`,
//! `Schedule::from_parts`, `TimedPath.cells`, `ChipSpec::mark_dead`), and
//! asserts that the checker trips the *intended* rule code — one test per
//! rule family. A checker that stays silent on any of these mutations has
//! lost its teeth.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dmfstream::check::{check_pass, check_placement, check_routes, check_schedule, RuleCode};
use dmfstream::chip::presets::streaming_chip;
use dmfstream::chip::Coord;
use dmfstream::engine::{EngineConfig, StreamingEngine};
use dmfstream::forest::{build_forest, ReusePolicy};
use dmfstream::mixalgo::{MinMix, MixingAlgorithm};
use dmfstream::mixgraph::{MixGraph, MixNode, Operand};
use dmfstream::ratio::{FluidId, TargetRatio};
use dmfstream::route::{route_concurrent, Grid, RouteRequest, TimedPath};
use dmfstream::sched::{srs_schedule, Schedule};

fn pcr_d4() -> TargetRatio {
    TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
}

/// A known-good (forest, schedule) pair for the PCR running example.
fn good_pass(demand: u64) -> (TargetRatio, MixGraph, Schedule) {
    let target = pcr_d4();
    let template = MinMix.build_template(&target).unwrap();
    let forest = build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap();
    let schedule = srs_schedule(&forest, 3).unwrap();
    (target, forest, schedule)
}

fn clone_nodes(graph: &MixGraph) -> Vec<MixNode> {
    graph.iter().map(|(_, n)| n.clone()).collect()
}

#[test]
fn baseline_is_clean() {
    let (target, forest, schedule) = good_pass(20);
    let report = check_pass(&target, 20, &forest, &schedule, None);
    assert!(report.is_clean(), "unmutated pass must be clean:\n{report}");
}

/// CF family: replacing one mix input with a different reagent makes the
/// node's stored mixture disagree with the mix of its (new) operands.
#[test]
fn dropped_mix_input_trips_cf001() {
    let (target, forest, schedule) = good_pass(8);
    let mut nodes = clone_nodes(&forest);
    // Find a node with an Input operand and swap the reagent for another.
    let victim = nodes
        .iter()
        .position(|n| matches!(n.left(), Operand::Input(_)))
        .expect("some node consumes a fresh input");
    let new_left = match nodes[victim].left() {
        Operand::Input(f) => Operand::Input(FluidId((f.0 + 1) % forest.fluid_count())),
        Operand::Droplet(_) => unreachable!("victim consumes an input"),
    };
    let n = &nodes[victim];
    nodes[victim] = MixNode::new(new_left, n.right(), n.mixture().clone(), n.level(), n.tree());
    let mutated = MixGraph::from_raw_parts(
        forest.fluid_count(),
        nodes,
        forest.roots().to_vec(),
        forest.targets().to_vec(),
    );
    let report = check_pass(&target, 8, &mutated, &schedule, None);
    assert!(report.has(RuleCode::Cf001), "swapping a mix input must trip CF001, got:\n{report}");
}

/// SCH family (precedence): swapping a producer's cycle with its
/// consumer's makes the consumer fire before its operand exists.
#[test]
fn swapped_schedule_steps_trip_sch002() {
    let (_, forest, schedule) = good_pass(8);
    let mut assignments = schedule.assignments();
    // Find a producer/consumer pair and swap their cycles.
    let (producer, consumer) = forest
        .iter()
        .find_map(|(id, node)| {
            node.operands().iter().find_map(|op| match op {
                Operand::Droplet(src) => Some((src.index(), id.index())),
                Operand::Input(_) => None,
            })
        })
        .expect("forest has at least one droplet edge");
    let (pc, pm) = assignments[producer];
    let (cc, cm) = assignments[consumer];
    assert!(pc < cc, "producer runs first in a valid schedule");
    assignments[producer] = (cc, pm);
    assignments[consumer] = (pc, cm);
    let mutated = Schedule::from_parts(
        schedule.mixer_count(),
        assignments.iter().map(|&(c, _)| c).collect(),
        assignments.iter().map(|&(_, m)| m).collect(),
    );
    let report = check_schedule(&forest, &mutated, None);
    assert!(
        report.has(RuleCode::Sch002),
        "swapped producer/consumer cycles must trip SCH002, got:\n{report}"
    );
}

/// SCH family (capacity): double-booking a mixer overbooks both the
/// (cycle, mixer) slot and the cycle's total occupancy.
#[test]
fn overbooked_mixer_trips_sch003_and_sch004() {
    let (_, forest, schedule) = good_pass(8);
    let mut assignments = schedule.assignments();
    // Cram three leaf nodes (no droplet operands, so no precedence noise)
    // into cycle 1 of a 2-mixer schedule: mixer 0 twice, mixer 1 once.
    let leaves: Vec<usize> = forest
        .iter()
        .filter(|(_, n)| n.operands().iter().all(|op| matches!(op, Operand::Input(_))))
        .map(|(id, _)| id.index())
        .collect();
    assert!(leaves.len() >= 3, "PCR forest has enough leaf mixes");
    assignments[leaves[0]] = (1, 0);
    assignments[leaves[1]] = (1, 0);
    assignments[leaves[2]] = (1, 1);
    let mutated = Schedule::from_parts(
        2,
        assignments.iter().map(|&(c, _)| c).collect(),
        assignments.iter().map(|&(_, m)| m).collect(),
    );
    let report = check_schedule(&forest, &mutated, None);
    assert!(report.has(RuleCode::Sch004), "double-booked mixer must trip SCH004, got:\n{report}");
    assert!(report.has(RuleCode::Sch003), "3 mixes on 2 mixers must trip SCH003, got:\n{report}");
}

/// SCH family (storage): claiming one unit fewer than the recount.
#[test]
fn wrong_storage_claim_trips_sch005() {
    let (_, forest, schedule) = good_pass(20);
    let peak = schedule.storage(&forest).peak;
    let report = check_schedule(&forest, &schedule, Some(peak + 1));
    assert!(
        report.has(RuleCode::Sch005),
        "inflated storage claim must trip SCH005, got:\n{report}"
    );
    assert!(check_schedule(&forest, &schedule, Some(peak)).is_clean());
}

/// RT family: deleting one step from a timed path makes the droplet jump
/// two cells in one step.
#[test]
fn shifted_route_trips_rt002() {
    let grid = Grid::new(8, 8);
    let requests = vec![
        RouteRequest { from: Coord::new(0, 0), to: Coord::new(6, 0) },
        RouteRequest { from: Coord::new(0, 4), to: Coord::new(6, 4) },
    ];
    let mut paths = route_concurrent(&grid, &requests).unwrap();
    assert!(check_routes(&grid, &requests, &paths).is_clean());
    // Drop the second step of the first path: the droplet now teleports
    // from cells[0] to what used to be cells[2].
    assert!(paths[0].cells().len() >= 4, "straight-line route is long enough");
    let mut cells = paths[0].cells().to_vec();
    cells.remove(1);
    paths[0] = TimedPath::new(cells).unwrap();
    let report = check_routes(&grid, &requests, &paths);
    assert!(
        report.has(RuleCode::Rt002),
        "a path with a missing step must trip RT002, got:\n{report}"
    );
}

/// PLC family: a dead electrode under a mixer footprint.
#[test]
fn dead_electrode_under_mixer_trips_plc003() {
    let mut chip = streaming_chip(7, 3, 5).unwrap();
    assert!(check_placement(&chip).is_clean());
    let cell = chip.mixers().next().unwrap().port();
    chip.mark_dead(cell);
    let report = check_placement(&chip);
    assert!(
        report.has(RuleCode::Plc003),
        "dead electrode under a mixer must trip PLC003, got:\n{report}"
    );
}

/// PLN family: tampering with a plan's aggregate totals after planning.
#[test]
fn tampered_plan_aggregate_trips_pln002() {
    let engine = StreamingEngine::new(EngineConfig::default());
    let mut plan = engine.plan(&pcr_d4(), 20).unwrap();
    assert!(plan.static_check().is_clean());
    plan.total_waste += 1;
    let report = plan.static_check();
    assert!(report.has(RuleCode::Pln002), "tampered waste total must trip PLN002, got:\n{report}");
}
