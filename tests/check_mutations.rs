//! Mutation tests for the `dmf-check` static verifier.
//!
//! Each test takes a **known-good** artifact (a real forest, schedule,
//! placement or route set), applies one targeted mutation through the
//! unvalidated constructors (`MixGraph::from_raw_parts`,
//! `Schedule::from_parts`, `TimedPath.cells`, `ChipSpec::mark_dead`), and
//! asserts that the checker trips the *intended* rule code — one test per
//! rule family. A checker that stays silent on any of these mutations has
//! lost its teeth.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dmfstream::check::{
    analyze_program_flow, check_feasibility, check_pass, check_placement, check_program_flow,
    check_routes, check_schedule, recount_forest, FlowExpectation, RuleCode,
};
use dmfstream::chip::presets::streaming_chip;
use dmfstream::chip::{ChipSpec, Coord, ModuleKind};
use dmfstream::engine::{realize_pass, EngineConfig, EngineError, StreamingEngine};
use dmfstream::forest::{build_forest, ReusePolicy};
use dmfstream::mixalgo::{MinMix, MixingAlgorithm};
use dmfstream::mixgraph::{MixGraph, MixNode, Operand};
use dmfstream::ratio::{FluidId, TargetRatio};
use dmfstream::route::{route_concurrent, Grid, RouteRequest, TimedPath};
use dmfstream::sched::{srs_schedule, Schedule};
use dmfstream::sim::{ChipProgram, DropletId, Instruction};
use std::collections::{BTreeSet, HashMap};

fn pcr_d4() -> TargetRatio {
    TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
}

/// A known-good (forest, schedule) pair for the PCR running example.
fn good_pass(demand: u64) -> (TargetRatio, MixGraph, Schedule) {
    let target = pcr_d4();
    let template = MinMix.build_template(&target).unwrap();
    let forest = build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap();
    let schedule = srs_schedule(&forest, 3).unwrap();
    (target, forest, schedule)
}

fn clone_nodes(graph: &MixGraph) -> Vec<MixNode> {
    graph.iter().map(|(_, n)| n.clone()).collect()
}

#[test]
fn baseline_is_clean() {
    let (target, forest, schedule) = good_pass(20);
    let report = check_pass(&target, 20, &forest, &schedule, None);
    assert!(report.is_clean(), "unmutated pass must be clean:\n{report}");
}

/// CF family: replacing one mix input with a different reagent makes the
/// node's stored mixture disagree with the mix of its (new) operands.
#[test]
fn dropped_mix_input_trips_cf001() {
    let (target, forest, schedule) = good_pass(8);
    let mut nodes = clone_nodes(&forest);
    // Find a node with an Input operand and swap the reagent for another.
    let victim = nodes
        .iter()
        .position(|n| matches!(n.left(), Operand::Input(_)))
        .expect("some node consumes a fresh input");
    let new_left = match nodes[victim].left() {
        Operand::Input(f) => Operand::Input(FluidId((f.0 + 1) % forest.fluid_count())),
        Operand::Droplet(_) => unreachable!("victim consumes an input"),
    };
    let n = &nodes[victim];
    nodes[victim] = MixNode::new(new_left, n.right(), n.mixture().clone(), n.level(), n.tree());
    let mutated = MixGraph::from_raw_parts(
        forest.fluid_count(),
        nodes,
        forest.roots().to_vec(),
        forest.targets().to_vec(),
    );
    let report = check_pass(&target, 8, &mutated, &schedule, None);
    assert!(report.has(RuleCode::Cf001), "swapping a mix input must trip CF001, got:\n{report}");
}

/// SCH family (precedence): swapping a producer's cycle with its
/// consumer's makes the consumer fire before its operand exists.
#[test]
fn swapped_schedule_steps_trip_sch002() {
    let (_, forest, schedule) = good_pass(8);
    let mut assignments = schedule.assignments();
    // Find a producer/consumer pair and swap their cycles.
    let (producer, consumer) = forest
        .iter()
        .find_map(|(id, node)| {
            node.operands().iter().find_map(|op| match op {
                Operand::Droplet(src) => Some((src.index(), id.index())),
                Operand::Input(_) => None,
            })
        })
        .expect("forest has at least one droplet edge");
    let (pc, pm) = assignments[producer];
    let (cc, cm) = assignments[consumer];
    assert!(pc < cc, "producer runs first in a valid schedule");
    assignments[producer] = (cc, pm);
    assignments[consumer] = (pc, cm);
    let mutated = Schedule::from_parts(
        schedule.mixer_count(),
        assignments.iter().map(|&(c, _)| c).collect(),
        assignments.iter().map(|&(_, m)| m).collect(),
    );
    let report = check_schedule(&forest, &mutated, None);
    assert!(
        report.has(RuleCode::Sch002),
        "swapped producer/consumer cycles must trip SCH002, got:\n{report}"
    );
}

/// SCH family (capacity): double-booking a mixer overbooks both the
/// (cycle, mixer) slot and the cycle's total occupancy.
#[test]
fn overbooked_mixer_trips_sch003_and_sch004() {
    let (_, forest, schedule) = good_pass(8);
    let mut assignments = schedule.assignments();
    // Cram three leaf nodes (no droplet operands, so no precedence noise)
    // into cycle 1 of a 2-mixer schedule: mixer 0 twice, mixer 1 once.
    let leaves: Vec<usize> = forest
        .iter()
        .filter(|(_, n)| n.operands().iter().all(|op| matches!(op, Operand::Input(_))))
        .map(|(id, _)| id.index())
        .collect();
    assert!(leaves.len() >= 3, "PCR forest has enough leaf mixes");
    assignments[leaves[0]] = (1, 0);
    assignments[leaves[1]] = (1, 0);
    assignments[leaves[2]] = (1, 1);
    let mutated = Schedule::from_parts(
        2,
        assignments.iter().map(|&(c, _)| c).collect(),
        assignments.iter().map(|&(_, m)| m).collect(),
    );
    let report = check_schedule(&forest, &mutated, None);
    assert!(report.has(RuleCode::Sch004), "double-booked mixer must trip SCH004, got:\n{report}");
    assert!(report.has(RuleCode::Sch003), "3 mixes on 2 mixers must trip SCH003, got:\n{report}");
}

/// SCH family (storage): claiming one unit fewer than the recount.
#[test]
fn wrong_storage_claim_trips_sch005() {
    let (_, forest, schedule) = good_pass(20);
    let peak = schedule.storage(&forest).peak;
    let report = check_schedule(&forest, &schedule, Some(peak + 1));
    assert!(
        report.has(RuleCode::Sch005),
        "inflated storage claim must trip SCH005, got:\n{report}"
    );
    assert!(check_schedule(&forest, &schedule, Some(peak)).is_clean());
}

/// RT family: deleting one step from a timed path makes the droplet jump
/// two cells in one step.
#[test]
fn shifted_route_trips_rt002() {
    let grid = Grid::new(8, 8);
    let requests = vec![
        RouteRequest { from: Coord::new(0, 0), to: Coord::new(6, 0) },
        RouteRequest { from: Coord::new(0, 4), to: Coord::new(6, 4) },
    ];
    let mut paths = route_concurrent(&grid, &requests).unwrap();
    assert!(check_routes(&grid, &requests, &paths).is_clean());
    // Drop the second step of the first path: the droplet now teleports
    // from cells[0] to what used to be cells[2].
    assert!(paths[0].cells().len() >= 4, "straight-line route is long enough");
    let mut cells = paths[0].cells().to_vec();
    cells.remove(1);
    paths[0] = TimedPath::new(cells).unwrap();
    let report = check_routes(&grid, &requests, &paths);
    assert!(
        report.has(RuleCode::Rt002),
        "a path with a missing step must trip RT002, got:\n{report}"
    );
}

/// PLC family: a dead electrode under a mixer footprint.
#[test]
fn dead_electrode_under_mixer_trips_plc003() {
    let mut chip = streaming_chip(7, 3, 5).unwrap();
    assert!(check_placement(&chip).is_clean());
    let cell = chip.mixers().next().unwrap().port();
    chip.mark_dead(cell);
    let report = check_placement(&chip);
    assert!(
        report.has(RuleCode::Plc003),
        "dead electrode under a mixer must trip PLC003, got:\n{report}"
    );
}

/// PLN family: tampering with a plan's aggregate totals after planning.
#[test]
fn tampered_plan_aggregate_trips_pln002() {
    let engine = StreamingEngine::new(EngineConfig::default());
    let mut plan = engine.plan(&pcr_d4(), 20).unwrap();
    assert!(plan.static_check().is_clean());
    plan.total_waste += 1;
    let report = plan.static_check();
    assert!(report.has(RuleCode::Pln002), "tampered waste total must trip PLN002, got:\n{report}");
}

/// A known-good realized program for the PCR running example, the chip it
/// runs on, and the flow-ledger expectation re-derived from its raw forest.
fn good_program(demand: u64) -> (ChipSpec, ChipProgram, FlowExpectation) {
    let target = pcr_d4();
    let engine = StreamingEngine::new(EngineConfig::default());
    let plan = engine.plan(&target, demand).unwrap();
    let chip = streaming_chip(target.fluid_count(), plan.mixers, plan.storage_peak.max(1)).unwrap();
    let pass = &plan.passes[0];
    let program = realize_pass(pass, &chip).unwrap();
    let counts = recount_forest(&pass.forest);
    let expect = FlowExpectation {
        dispensed: counts.input_total,
        emitted: 2 * counts.trees,
        discarded: counts.waste,
    };
    (chip, program, expect)
}

/// Per-droplet reagent sets, re-derived by replaying dispenses and mixes.
fn reagent_sets(chip: &ChipSpec, program: &ChipProgram) -> HashMap<DropletId, BTreeSet<usize>> {
    let mut sets: HashMap<DropletId, BTreeSet<usize>> = HashMap::new();
    for instruction in program.instructions() {
        match instruction {
            Instruction::Dispense { reservoir, droplet } => {
                let mut set = BTreeSet::new();
                if let Ok(module) = chip.try_module(*reservoir) {
                    if let ModuleKind::Reservoir { fluid } = module.kind() {
                        set.insert(fluid);
                    }
                }
                sets.insert(*droplet, set);
            }
            Instruction::MixSplit { a, b, out_a, out_b, .. } => {
                let mut merged = sets.get(a).cloned().unwrap_or_default();
                merged.extend(sets.get(b).cloned().unwrap_or_default());
                sets.insert(*out_a, merged.clone());
                sets.insert(*out_b, merged);
            }
            _ => {}
        }
    }
    sets
}

#[test]
fn realized_program_is_flow_clean() {
    let (chip, program, expect) = good_program(20);
    let (report, ledger) = analyze_program_flow(&chip, &program, Some(&expect));
    assert!(report.is_clean(), "unmutated realized program must be flow-clean:\n{report}");
    assert_eq!(ledger.leaked, 0);
    assert_eq!(ledger.dispensed, ledger.emitted + ledger.discarded);
}

/// FLOW001: rerouting a droplet through a storage cell that is parked with
/// a reagent-disjoint droplet cross-contaminates the cell.
#[test]
fn contaminated_storage_cell_trips_flow001() {
    let (chip, program, _) = good_program(20);
    let sets = reagent_sets(&chip, &program);
    let instructions = program.instructions();
    // Find a parked droplet's residency window (Store .. Fetch) and a
    // reagent-disjoint droplet transported inside it.
    let mut mutation = None;
    'outer: for (i, instruction) in instructions.iter().enumerate() {
        let Instruction::Store { droplet: parked, cell } = instruction else { continue };
        let end = instructions[i..]
            .iter()
            .position(|x| matches!(x, Instruction::Fetch { droplet, .. } if droplet == parked))
            .map_or(instructions.len(), |k| i + k);
        for (j, other) in instructions.iter().enumerate().take(end).skip(i + 1) {
            let Instruction::TransportTo { droplet: visitor, .. } = other else { continue };
            if sets[visitor].is_disjoint(&sets[parked]) {
                mutation = Some((j, *visitor, *cell));
                break 'outer;
            }
        }
    }
    let (j, visitor, cell) = mutation.expect("a disjoint droplet moves while another is parked");
    let mut mutated = instructions.to_vec();
    // Stop over at the occupied cell before continuing to the original
    // destination: a wash-free shared visit, nothing else changes.
    mutated.insert(j, Instruction::TransportTo { droplet: visitor, module: cell });
    let report = check_program_flow(&chip, &mutated.into_iter().collect(), None);
    assert!(report.has(RuleCode::Flow001), "shared cell must trip FLOW001, got:\n{report}");
    assert!(!report.has(RuleCode::Flow002), "no collision expected:\n{report}");
    assert!(!report.has(RuleCode::Flow003), "ledger still balances:\n{report}");
}

/// FLOW002: deleting the transport that delivers a mix operand leaves the
/// droplet at its reservoir when the mixer fires.
#[test]
fn mix_operand_left_behind_trips_flow002() {
    let (chip, program, _) = good_program(20);
    let instructions = program.instructions();
    let (mix_at, mixer, b) = instructions
        .iter()
        .enumerate()
        .find_map(|(i, instruction)| match instruction {
            Instruction::MixSplit { mixer, b, .. } => Some((i, *mixer, *b)),
            _ => None,
        })
        .expect("program mixes");
    let feed = instructions[..mix_at]
        .iter()
        .rposition(|instruction| {
            matches!(instruction, Instruction::TransportTo { droplet, module }
                if *droplet == b && *module == mixer)
        })
        .expect("operand b is delivered to its mixer");
    let mut mutated = instructions.to_vec();
    mutated.remove(feed);
    let report = check_program_flow(&chip, &mutated.into_iter().collect(), None);
    assert!(report.has(RuleCode::Flow002), "missing operand must trip FLOW002, got:\n{report}");
    assert!(!report.has(RuleCode::Flow001), "no contamination expected:\n{report}");
    assert!(!report.has(RuleCode::Flow003), "ledger still balances:\n{report}");
}

/// FLOW003 (leak): deleting the final discard strands a waste droplet on
/// the chip, so dispensed ≠ emitted + discarded.
#[test]
fn leaked_droplet_trips_flow003() {
    let (chip, program, _) = good_program(20);
    let instructions = program.instructions();
    let last = instructions
        .iter()
        .rposition(|i| matches!(i, Instruction::Discard { .. }))
        .expect("demand 20 produces waste (paper Fig. 2: W = 5)");
    let mut mutated = instructions.to_vec();
    mutated.remove(last);
    let (report, ledger) = analyze_program_flow(&chip, &mutated.into_iter().collect(), None);
    assert!(report.has(RuleCode::Flow003), "stranded droplet must trip FLOW003, got:\n{report}");
    assert!(!report.has(RuleCode::Flow001), "no contamination expected:\n{report}");
    assert!(!report.has(RuleCode::Flow002), "no collision expected:\n{report}");
    assert_eq!(ledger.leaked, 1);
}

/// FLOW003 (expectation): the same clean program against a tampered
/// caller-side ledger expectation.
#[test]
fn tampered_flow_expectation_trips_flow003() {
    let (chip, program, expect) = good_program(20);
    let tampered = FlowExpectation { dispensed: expect.dispensed + 1, ..expect };
    let report = check_program_flow(&chip, &program, Some(&tampered));
    assert!(
        report.has(RuleCode::Flow003),
        "expectation mismatch must trip FLOW003, got:\n{report}"
    );
}

/// FEAS001: a ratio whose parts do not sum to a power of two has no dyadic
/// mixing tree at any accuracy.
#[test]
fn non_power_of_two_sum_trips_feas001() {
    let report = check_feasibility(&[1, 2], 4);
    assert!(report.has(RuleCode::Feas001), "1:2 must trip FEAS001, got:\n{report}");
    assert!(!report.has(RuleCode::Feas002), "1:2 is well-formed, just unreachable:\n{report}");
    assert!(check_feasibility(&[1, 3], 4).is_clean(), "1:3 sums to a power of two");
}

/// FEAS002: degenerate requests (zero demand, empty/zero/pure ratios) are
/// rejected by the pre-pass and by the engine before any planning.
#[test]
fn degenerate_request_trips_feas002() {
    for (parts, demand) in [(&[1u64, 1][..], 0), (&[][..], 4), (&[0, 0][..], 4), (&[16][..], 4)] {
        let report = check_feasibility(parts, demand);
        assert!(report.has(RuleCode::Feas002), "{parts:?} x{demand} must trip FEAS002:\n{report}");
    }
    // End to end: the engine refuses a pure-fluid target pre-planning.
    let engine = StreamingEngine::new(EngineConfig::default());
    let pure = TargetRatio::new(vec![16]).unwrap();
    assert!(matches!(
        engine.plan(&pure, 4),
        Err(EngineError::Infeasible { rule: RuleCode::Feas002, .. })
    ));
}

/// Every published rule code must parse back from its text and carry both
/// a one-line summary and long-form `--explain` documentation.
#[test]
fn every_rule_code_is_documented() {
    assert_eq!(RuleCode::ALL.len(), 30);
    for code in RuleCode::ALL {
        assert_eq!(RuleCode::parse(code.code()), Some(code), "{code:?} round-trips");
        assert!(!code.summary().trim().is_empty(), "{code:?} has a summary");
        let explain = code.explain().trim();
        assert!(!explain.is_empty(), "{code:?} has --explain text");
        assert!(
            explain.len() > code.summary().len(),
            "{code:?} explain text goes beyond the summary"
        );
    }
}
