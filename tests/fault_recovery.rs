//! Fault-injection and recovery oracles.
//!
//! Two invariants anchor the subsystem:
//!
//! * a zero-fault-rate run is *byte-identical* to the fault-free
//!   baseline — same trace, same report;
//! * after any single injected fault (each dispense ordinal, each split
//!   ordinal, latent dead electrodes), the recovered campaign still
//!   delivers the full demand and every emitted droplet carries exactly
//!   the demanded CF vector (verified by trace lineage, never trusted
//!   from the simulator).

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmfstream::chip::presets::streaming_chip;
use dmfstream::chip::{ChipSpec, Coord};
use dmfstream::engine::{realize_pass, EngineConfig, RecoveryPolicy, StreamingEngine};
use dmfstream::fault::lineage::{droplet_mixtures, emitted_droplets};
use dmfstream::fault::{run_resilient, FaultConfig};
use dmfstream::ratio::{Mixture, TargetRatio};
use dmfstream::sim::{InjectedFaults, Simulator, Trace};

fn pcr_d4() -> TargetRatio {
    TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("paper ratio")
}

/// Every droplet emitted in `trace` must hold exactly `expected`.
fn assert_emissions_on_target(trace: &Trace, chip: &ChipSpec, expected: &Mixture) {
    let contents = droplet_mixtures(trace, chip, expected.fluid_count());
    for droplet in emitted_droplets(trace) {
        assert_eq!(
            contents.get(&droplet),
            Some(expected),
            "emitted droplet {droplet:?} is off-target"
        );
    }
}

/// Injects `faults` into the PCR D = 20 baseline pass, recovers through
/// the engine, and checks the demand is met with on-target emissions
/// only. Returns how many targets the faulty first run emitted.
fn recover_from(faults: InjectedFaults) -> u64 {
    let target = pcr_d4();
    let engine = StreamingEngine::new(EngineConfig::default());
    let plan = engine.plan(&target, 20).unwrap();
    let chip = streaming_chip(7, plan.mixers, plan.storage_peak.max(1)).unwrap();
    let program = realize_pass(&plan.passes[0], &chip).unwrap();
    let outcome = Simulator::new(&chip).run_faulty(&program, &faults).unwrap();

    let expected = target.to_mixture();
    let contents = droplet_mixtures(&outcome.trace, &chip, 7);
    let salvage =
        outcome.survivors.iter().filter(|d| contents.get(d) == Some(&expected)).count() as u64;
    let first_emitted = outcome.report.emitted;
    let mut traces = vec![outcome.trace];
    let mut delivered = first_emitted;

    let lost = 20u64.saturating_sub(first_emitted);
    if lost > 0 {
        let recovery = StreamingEngine::new(
            EngineConfig::default().with_storage_limit(chip.storage_cells().count()),
        );
        let r = recovery.plan_recovery(&target, lost, salvage).unwrap();
        delivered += r.salvaged;
        if let Some(partial) = r.plan {
            for pass in &partial.passes {
                let prog = realize_pass(pass, &chip).unwrap();
                let (report, trace) = Simulator::new(&chip).run_traced(&prog).unwrap();
                delivered += report.emitted;
                traces.push(trace);
            }
        }
    }
    assert!(delivered >= 20, "recovery delivered only {delivered}/20");
    for trace in &traces {
        assert_emissions_on_target(trace, &chip, &expected);
    }
    first_emitted
}

#[test]
fn zero_fault_run_is_byte_identical_to_baseline() {
    let target = pcr_d4();
    let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 20).unwrap();
    let chip = streaming_chip(7, plan.mixers, plan.storage_peak.max(1)).unwrap();
    let program = realize_pass(&plan.passes[0], &chip).unwrap();
    let sim = Simulator::new(&chip);
    let (baseline_report, baseline_trace) = sim.run_traced(&program).unwrap();

    // An empty fault plan (even with sensor checkpoints armed) changes
    // nothing observable.
    for sensor_period in [0, 2] {
        let faults = InjectedFaults { sensor_period, ..Default::default() };
        let outcome = sim.run_faulty(&program, &faults).unwrap();
        assert_eq!(outcome.trace, baseline_trace, "zero-fault trace diverged");
        assert_eq!(outcome.trace.render(), baseline_trace.render());
        assert_eq!(outcome.report, baseline_report, "zero-fault report diverged");
        assert!(outcome.faults.is_empty());
        assert!(outcome.survivors.is_empty());
    }
}

#[test]
fn zero_rate_campaign_reproduces_the_paper_oracles() {
    let out = run_resilient(
        &pcr_d4(),
        20,
        EngineConfig::default(),
        &FaultConfig::default().with_seed(42),
        RecoveryPolicy::default(),
    )
    .unwrap();
    assert_eq!(out.runs, 1);
    assert_eq!(out.replans, 0);
    assert_eq!((out.emitted, out.injected, out.detected), (20, 0, 0));
    assert_eq!(out.baseline_cycles, 11, "paper Fig. 3 Tc");
    assert_eq!(out.total_cycles, 11);
    assert_eq!(out.traces.len(), 1);
    // The campaign trace equals a by-hand fault-free realization.
    let plan = StreamingEngine::new(EngineConfig::default()).plan(&pcr_d4(), 20).unwrap();
    let chip = streaming_chip(7, plan.mixers, plan.storage_peak.max(1)).unwrap();
    let program = realize_pass(&plan.passes[0], &chip).unwrap();
    let (_, trace) = Simulator::new(&chip).run_traced(&program).unwrap();
    assert_eq!(out.traces[0], trace);
}

#[test]
fn every_single_dispense_failure_is_recovered() {
    // The D = 20 pass dispenses 25 droplets (the paper's I); fail each
    // one in turn.
    let mut any_loss = false;
    for ordinal in 0..25u64 {
        let mut faults = InjectedFaults { sensor_period: 2, ..Default::default() };
        faults.failed_dispenses.insert(ordinal);
        any_loss |= recover_from(faults) < 20;
    }
    assert!(any_loss, "failed dispenses must cost targets somewhere");
}

#[test]
fn every_single_split_error_is_recovered() {
    // The D = 20 pass fires 27 mix-splits (the paper's Tms); perturb
    // each one in turn. The output-port sensor must reject every
    // erroneous target, so all emissions stay on-target.
    let mut any_loss = false;
    for ordinal in 0..27u64 {
        let mut faults = InjectedFaults { sensor_period: 2, ..Default::default() };
        faults.bad_splits.insert(ordinal);
        any_loss |= recover_from(faults) < 20;
    }
    assert!(any_loss, "split errors must cost targets somewhere");
}

#[test]
fn single_latent_dead_electrodes_are_recovered() {
    // Kill open transit cells one at a time; droplets crossing one get
    // stuck there mid-transport.
    let plan = StreamingEngine::new(EngineConfig::default()).plan(&pcr_d4(), 20).unwrap();
    let chip = streaming_chip(7, plan.mixers, plan.storage_peak.max(1)).unwrap();
    let mut hit = 0u32;
    for y in [2, 6] {
        for x in 0..chip.width() {
            let cell = Coord::new(x, y);
            if chip.modules().iter().any(|m| m.rect().contains(cell)) {
                continue;
            }
            let mut faults = InjectedFaults { sensor_period: 2, ..Default::default() };
            faults.dead_cells.insert(cell);
            if recover_from(faults) < 20 {
                hit += 1;
            }
        }
    }
    assert!(hit > 0, "some transit cell must lie on a droplet route");
}

#[test]
fn seeded_random_campaigns_meet_demand_with_correct_cf() {
    let target = pcr_d4();
    let expected = target.to_mixture();
    let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 20).unwrap();
    let chip = streaming_chip(7, plan.mixers, plan.storage_peak.max(1)).unwrap();
    for seed in 1..=6u64 {
        let cfg = FaultConfig::default().with_seed(seed).with_fault_rate(0.05);
        let out = run_resilient(
            &target,
            20,
            EngineConfig::default(),
            &cfg,
            RecoveryPolicy::default().with_max_replans(64),
        )
        .unwrap();
        assert!(out.demand_met(), "seed {seed}: {out}");
        assert!(out.detected <= out.injected, "seed {seed}");
        for trace in &out.traces {
            assert_emissions_on_target(trace, &chip, &expected);
        }
    }
}

#[test]
fn campaigns_reroute_around_diagnosed_electrodes() {
    // Find a seed whose campaign diagnoses dead electrodes, then check
    // the recovery runs' traces never step onto them.
    let target = pcr_d4();
    let mut diagnosed_any = false;
    for seed in 1..=20u64 {
        let cfg = FaultConfig::default().with_seed(seed).with_fault_rate(0.08);
        let Ok(out) = run_resilient(
            &target,
            20,
            EngineConfig::default(),
            &cfg,
            RecoveryPolicy::default().with_max_replans(64),
        ) else {
            continue;
        };
        if out.dead_cells.is_empty() {
            continue;
        }
        diagnosed_any = true;
        // A cell is diagnosed when the run it struck in completes; every
        // *later* run routes around it, so a cell that stuck droplets in
        // run i never appears again in run j > i (within one run, several
        // droplets may pile onto the same still-latent cell).
        let mut diagnosed = std::collections::HashSet::new();
        for trace in &out.traces {
            let mut this_run = std::collections::HashSet::new();
            for line in trace.render().lines() {
                if let Some(rest) = line.split("stuck on dead electrode ").nth(1) {
                    let cell = rest.trim().to_owned();
                    assert!(!diagnosed.contains(&cell), "seed {seed}: {cell} hit after diagnosis");
                    this_run.insert(cell);
                }
            }
            diagnosed.extend(this_run);
        }
    }
    assert!(diagnosed_any, "no campaign diagnosed a dead electrode");
}
