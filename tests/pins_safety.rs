//! Pin-backend safety properties, fixed inputs, every Table 2 protocol:
//! no simulated cycle ever actuates two conflicting electrodes under the
//! `RowColumn` or `Broadcast` backend.
//!
//! The verification is layered so no single implementation is trusted:
//!
//! * routed waves are re-checked here from [`PinAssignment::group_of`]'s
//!   raw group data — not through `motion_conflict`, the predicate the
//!   router itself consults;
//! * realized programs run under the pinned simulator, which aborts with
//!   `SimError::PinConflict` on any harmful co-activation — completing is
//!   the property — and the ghost-wear arithmetic must reconcile exactly
//!   with an unpinned run of the same program;
//! * the same programs are replayed through `dmf-check`'s `PIN/*` rules.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dmfstream::check::check_program_pins;
use dmfstream::chip::presets::streaming_chip;
use dmfstream::chip::{ChipSpec, Coord};
use dmfstream::engine::{realize_pass, EngineConfig, StreamingEngine};
use dmfstream::pins::{BackendKind, PinAssignment};
use dmfstream::route::{route_concurrent_pinned, Grid, RouteRequest, TimedPath};
use dmfstream::sim::Simulator;
use dmfstream::workloads::protocols;

const DEMAND: u64 = 12;
const PINNED: [BackendKind; 2] = [BackendKind::RowColumn, BackendKind::Broadcast];

fn chebyshev(a: Coord, b: Coord) -> i32 {
    (a.x - b.x).abs().max((a.y - b.y).abs())
}

/// Independent co-activation audit of a routed wave: every electrode a
/// moving droplet actuates ghost-fires its whole pin group (wired-OR), and
/// no ghost may land next to — or on the vacated cell of — any other
/// droplet. A ghost exactly on another droplet's current cell merely
/// reinforces it and is compatible.
fn assert_wave_pin_safe(paths: &[TimedPath], pins: &PinAssignment, what: &str) {
    let horizon = paths.iter().map(|p| p.duration()).max().unwrap_or(0);
    for t in 1..=horizon {
        for (i, path) in paths.iter().enumerate() {
            let (prev, now) = (path.at(t - 1), path.at(t));
            if prev == now {
                continue; // held, not actuated
            }
            for &ghost in pins.group_of(now) {
                if ghost == now {
                    continue;
                }
                for (j, other) in paths.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let (o_prev, o_now) = (other.at(t - 1), other.at(t));
                    let harmful = ghost != o_now
                        && (chebyshev(ghost, o_now) <= 1 || chebyshev(ghost, o_prev) <= 1);
                    assert!(
                        !harmful,
                        "{what}: droplet {i} actuating {now} at t={t} ghost-fires {ghost} \
                         next to droplet {j} ({o_prev} -> {o_now})"
                    );
                }
            }
        }
    }
}

/// The dispense wave `dmfstream check` exercises: one droplet per
/// reservoir / storage-cell pair.
fn dispense_wave(chip: &ChipSpec) -> (Grid, Vec<RouteRequest>) {
    let open: Vec<_> = chip.reservoirs().chain(chip.storage_cells()).map(|m| m.id()).collect();
    let grid = Grid::from_spec(chip, &open);
    let requests: Vec<RouteRequest> = chip
        .reservoirs()
        .zip(chip.storage_cells())
        .map(|(r, s)| RouteRequest { from: r.port(), to: s.port() })
        .collect();
    (grid, requests)
}

fn protocol_chip(
    ratio: &dmfstream::ratio::TargetRatio,
) -> (ChipSpec, Vec<dmfstream::engine::PassPlan>) {
    let plan = StreamingEngine::new(EngineConfig::default()).plan(ratio, DEMAND).unwrap();
    let chip = streaming_chip(ratio.fluid_count(), plan.mixers, plan.storage_peak.max(1)).unwrap();
    (chip, plan.passes)
}

#[test]
fn pinned_dispense_routes_verify_against_raw_groups() {
    for backend in PINNED {
        for protocol in protocols::table2_examples() {
            let (chip, _) = protocol_chip(&protocol.ratio);
            let pins = backend.assign(&chip).unwrap();
            let (grid, requests) = dispense_wave(&chip);
            // Serialized transport — what a shared-pin chip actually does —
            // must always route, and each lone path must be self-safe.
            for req in &requests {
                let one = std::slice::from_ref(req);
                let paths = route_concurrent_pinned(&grid, one, &pins)
                    .unwrap_or_else(|e| panic!("{} {backend}: lone droplet: {e}", protocol.id));
                assert_wave_pin_safe(&paths, &pins, &format!("{} {backend} solo", protocol.id));
            }
            // Where the backend admits the full concurrent wave, the
            // router's solution must survive the independent audit too.
            if let Ok(paths) = route_concurrent_pinned(&grid, &requests, &pins) {
                assert_wave_pin_safe(&paths, &pins, &format!("{} {backend} wave", protocol.id));
            }
        }
    }
}

#[test]
fn pinned_protocol_sims_never_co_activate_and_wear_reconciles() {
    for backend in PINNED {
        for protocol in protocols::table2_examples() {
            let (chip, passes) = protocol_chip(&protocol.ratio);
            let pins = backend.assign(&chip).unwrap();
            let mut emitted = 0;
            for pass in &passes {
                let program = realize_pass(pass, &chip).unwrap();
                // Completing without SimError::PinConflict is the property:
                // the pinned simulator vetoes any cycle whose actuation
                // ghost-fires next to another droplet.
                let pinned = Simulator::new(&chip)
                    .with_pins(&pins)
                    .run(&program)
                    .unwrap_or_else(|e| panic!("{} {backend}: {e}", protocol.id));
                let plain = Simulator::new(&chip).run(&program).unwrap();
                let total = |r: &dmfstream::sim::SimReport| {
                    r.electrode_actuations.values().map(|&n| u64::from(n)).sum::<u64>()
                };
                assert!(
                    pinned.ghost_actuations > 0,
                    "{} {backend}: sharing must ghost",
                    protocol.id
                );
                assert_eq!(
                    total(&pinned),
                    total(&plain) + pinned.ghost_actuations,
                    "{} {backend}: ghost wear must reconcile exactly",
                    protocol.id
                );
                assert_eq!(pinned.emitted, plain.emitted);
                emitted += pinned.emitted;
                // And the independent checker agrees the program is clean
                // under this backend.
                let report = check_program_pins(&chip, &pins, &program);
                assert!(report.is_clean(), "{} {backend}: {report:?}", protocol.id);
            }
            assert!(emitted >= DEMAND, "{} {backend}: demand unmet", protocol.id);
        }
    }
}

#[test]
fn direct_backend_is_inert_everywhere() {
    let protocol = &protocols::table2_examples()[0];
    let (chip, passes) = protocol_chip(&protocol.ratio);
    let pins = BackendKind::DirectAddress.assign(&chip).unwrap();
    assert!(pins.is_direct());
    for pass in &passes {
        let program = realize_pass(pass, &chip).unwrap();
        let pinned = Simulator::new(&chip).with_pins(&pins).run(&program).unwrap();
        let plain = Simulator::new(&chip).run(&program).unwrap();
        assert_eq!(pinned, plain, "direct addressing must be byte-identical");
        assert_eq!(pinned.ghost_actuations, 0);
    }
}
