//! Corpus-level consistency: engine aggregates, baseline dominance and
//! multi-target sharing over a deterministic sample of the synthetic
//! corpus.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmfstream::engine::{repeated, EngineConfig, StreamingEngine};
use dmfstream::forest::{build_multi_target_forest, ReusePolicy};
use dmfstream::mixalgo::{BaseAlgorithm, MinMix, MixingAlgorithm};
use dmfstream::workloads::synthetic;

#[test]
fn plan_aggregates_equal_pass_sums_across_corpus_sample() {
    for target in synthetic::sampled_corpus(60, 11) {
        let engine = StreamingEngine::new(EngineConfig::default().with_storage_limit(4));
        let Ok(plan) = engine.plan(&target, 24) else {
            continue; // budget infeasible for this ratio: separately tested
        };
        let mut cycles = 0u64;
        let mut mixes = 0u64;
        let mut inputs = 0u64;
        let mut waste = 0u64;
        let mut covered = 0u64;
        for pass in &plan.passes {
            pass.schedule.validate(&pass.forest).expect("valid pass schedule");
            let stats = pass.forest.stats();
            stats.assert_conservation();
            cycles += u64::from(pass.cycles());
            mixes += stats.mix_splits as u64;
            inputs += stats.input_total;
            waste += stats.waste as u64;
            covered += pass.demand;
            assert!(pass.storage_units() <= 4, "{target}: q over budget");
        }
        assert_eq!(cycles, plan.total_cycles, "{target}");
        assert_eq!(mixes, plan.total_mix_splits, "{target}");
        assert_eq!(inputs, plan.total_inputs, "{target}");
        assert_eq!(waste, plan.total_waste, "{target}");
        assert_eq!(covered, plan.demand, "{target}");
        assert_eq!(plan.inputs.iter().sum::<u64>(), plan.total_inputs, "{target}");
    }
}

#[test]
fn streaming_dominates_repeated_on_inputs_across_corpus_sample() {
    for target in synthetic::sampled_corpus(60, 23) {
        let engine = StreamingEngine::new(EngineConfig::default());
        let plan = engine.plan(&target, 32).expect("unconstrained plans succeed");
        let baseline =
            repeated(BaseAlgorithm::MinMix, &target, 32, plan.mixers).expect("baseline runs");
        assert!(plan.total_inputs <= baseline.total_inputs, "{target}");
        assert!(plan.total_cycles <= baseline.total_cycles, "{target}");
        assert!(plan.total_waste <= baseline.total_waste, "{target}");
    }
}

#[test]
fn serial_dilution_series_shares_heavily_as_multi_target_forest() {
    let series = synthetic::serial_dilution_series(6);
    let pairs: Vec<_> = series
        .iter()
        .map(|t| (MinMix.build_template(t).expect("dilutions build"), t.clone()))
        .collect();
    let forest =
        build_multi_target_forest(&pairs, ReusePolicy::AcrossTrees).expect("series builds");
    forest.validate().expect("valid forest");
    let shared = forest.stats();
    let separate: u64 = pairs.iter().map(|(t, _)| t.leaf_counts().iter().sum::<u64>()).sum();
    assert!(
        shared.input_total < separate,
        "the 1/2^k series nests, so sharing must save reactant: {} vs {separate}",
        shared.input_total
    );
    shared.assert_conservation();
}
